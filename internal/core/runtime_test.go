package core

import (
	"bytes"
	"fmt"
	"testing"

	"xlupc/internal/sim"
	"xlupc/internal/svd"
	"xlupc/internal/trace"
	"xlupc/internal/transport"
)

func cfg(threads, nodes int, prof *transport.Profile, cache CacheConfig) Config {
	return Config{Threads: threads, Nodes: nodes, Profile: prof, Cache: cache, Seed: 42}
}

func mustRun(t *testing.T, c Config, body func(th *Thread)) RunStats {
	t.Helper()
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rt.Run(body)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st
}

func TestConfigValidation(t *testing.T) {
	if _, err := NewRuntime(Config{Threads: 4, Nodes: 2}); err == nil {
		t.Fatal("missing profile accepted")
	}
	if _, err := NewRuntime(cfg(5, 2, transport.GM(), NoCache())); err == nil {
		t.Fatal("non-divisible threads accepted")
	}
	if _, err := NewRuntime(cfg(0, 0, transport.GM(), NoCache())); err == nil {
		t.Fatal("zero sizes accepted")
	}
}

// Every thread writes its own elements, then everyone reads everything
// back — with and without the cache, on both transports. Data
// integrity must hold in all four worlds.
func TestPutGetIntegrity(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		for _, cc := range []CacheConfig{NoCache(), DefaultCache()} {
			name := fmt.Sprintf("%s/cache=%v", prof.Name, cc.Enabled)
			t.Run(name, func(t *testing.T) {
				const threads, nodes, elems = 8, 4, 64
				mustRun(t, cfg(threads, nodes, prof, cc), func(th *Thread) {
					a := th.AllAlloc("A", elems, 8, 4)
					for i := int64(0); i < elems; i++ {
						if a.Owner(i) == th.ID() {
							th.PutUint64(a.At(i), uint64(i)*1000+uint64(th.ID()))
						}
					}
					th.Barrier()
					for i := int64(0); i < elems; i++ {
						want := uint64(i)*1000 + uint64(a.Owner(i))
						if got := th.GetUint64(a.At(i)); got != want {
							t.Errorf("thread %d: A[%d] = %d, want %d", th.ID(), i, got, want)
						}
					}
				})
			})
		}
	}
}

func TestBulkTransfersSplitCorrectly(t *testing.T) {
	const threads, nodes, elems = 4, 2, 100
	mustRun(t, cfg(threads, nodes, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", elems, 1, 7) // 1-byte elements, block 7
		if th.ID() == 0 {
			src := make([]byte, elems)
			for i := range src {
				src[i] = byte(i * 3)
			}
			th.PutBulk(a.At(0), src) // spans every thread and node
			th.Fence()
			dst := make([]byte, elems)
			th.GetBulk(dst, a.At(0))
			if !bytes.Equal(dst, src) {
				t.Errorf("bulk roundtrip mismatch")
			}
			// Offset, non-aligned span.
			mid := make([]byte, 31)
			th.GetBulk(mid, a.At(13))
			if !bytes.Equal(mid, src[13:44]) {
				t.Errorf("offset bulk mismatch")
			}
		}
		th.Barrier()
	})
}

func TestCopyBetweenArrays(t *testing.T) {
	mustRun(t, cfg(4, 2, transport.LAPI(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 40, 8, 5)
		b := th.AllAlloc("B", 40, 8, 3)
		if th.ID() == 1 {
			for i := int64(0); i < 40; i++ {
				th.PutUint64(a.At(i), uint64(i)+7)
			}
			th.Copy(b.At(0), a.At(0), 40)
			th.Fence()
			for i := int64(0); i < 40; i++ {
				if got := th.GetUint64(b.At(i)); got != uint64(i)+7 {
					t.Errorf("B[%d] = %d", i, got)
				}
			}
		}
		th.Barrier()
	})
}

// A cached GET must be faster than the same GET uncached, and the
// second access must hit.
func TestCacheHitSpeedsUpGet(t *testing.T) {
	latency := func(cc CacheConfig) (first, second sim.Time, st RunStats) {
		st = mustRun(t, cfg(2, 2, transport.GM(), cc), func(th *Thread) {
			a := th.AllAlloc("A", 64, 8, 32) // elements 32.. on thread 1/node 1
			th.Barrier()
			if th.ID() == 0 {
				t0 := th.Now()
				th.GetUint64(a.At(40))
				first = th.Now() - t0
				t0 = th.Now()
				th.GetUint64(a.At(41))
				second = th.Now() - t0
			}
			th.Barrier()
		})
		return
	}
	f0, s0, st0 := latency(NoCache())
	f1, s1, st1 := latency(DefaultCache())
	if st0.Cache.Lookups() != 0 {
		t.Fatal("baseline performed cache lookups")
	}
	if st1.Cache.Hits < 1 {
		t.Fatalf("expected a hit, stats %+v", st1.Cache)
	}
	// First cached access misses (and pays pin+piggyback), so it is
	// not faster; the second must be significantly faster than both
	// its own first and the uncached steady state.
	if !(s1 < s0) {
		t.Fatalf("cached steady GET %v not faster than uncached %v", s1, s0)
	}
	if !(s1 < f1) {
		t.Fatalf("hit %v not faster than miss %v", s1, f1)
	}
	// Uncached latencies are steady (after first-access pinning).
	if s0 > f0 {
		t.Logf("uncached: first %v, second %v", f0, s0)
	}
}

// GET roundtrips must land in the small-message envelope the paper
// reports (a few microseconds).
func TestGetLatencyEnvelope(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		var lat sim.Time
		mustRun(t, cfg(2, 2, prof, NoCache()), func(th *Thread) {
			a := th.AllAlloc("A", 16, 8, 8)
			th.Barrier()
			if th.ID() == 0 {
				th.GetUint64(a.At(8)) // warm pin path (none without cache, but fair)
				t0 := th.Now()
				th.GetUint64(a.At(9))
				lat = th.Now() - t0
			}
			th.Barrier()
		})
		if lat < 3*sim.Us || lat > 20*sim.Us {
			t.Errorf("%s small GET latency %v outside 3–20us envelope", prof.Name, lat)
		}
	}
}

func TestLocalAccessesUseNoNetwork(t *testing.T) {
	st := mustRun(t, cfg(4, 1, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 64, 8, 4)
		for i := int64(0); i < 64; i++ {
			if a.Owner(i) == th.ID() {
				th.PutUint64(a.At(i), uint64(i))
			}
		}
		th.Barrier()
		for i := int64(0); i < 64; i++ {
			if th.GetUint64(a.At(i)) != uint64(i) {
				t.Errorf("A[%d] wrong", i)
			}
		}
	})
	if st.Messages != 0 {
		t.Fatalf("single-node run sent %d network messages", st.Messages)
	}
	if st.Gets != 0 || st.LocalGets == 0 {
		t.Fatalf("gets misclassified: remote=%d local=%d", st.Gets, st.LocalGets)
	}
}

func TestGlobalAllocVisibleRemotely(t *testing.T) {
	mustRun(t, cfg(4, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		var a *SharedArray
		if th.ID() == 0 {
			a = th.GlobalAlloc("G", 32, 8, 4)
			th.ns.collective = a // share the Go reference for the test
		}
		th.Barrier()
		if a == nil {
			// Threads other than 0 fetch the reference their node rep
			// stored (node 0) or read it via the test backdoor.
			a = th.rt.nodes[0].collective.(*SharedArray)
		}
		if a.Owner(0) == th.ID() {
			th.PutUint64(a.At(0), 99)
		}
		th.Barrier()
		if got := th.GetUint64(a.At(0)); got != 99 {
			t.Errorf("thread %d: G[0] = %d", th.ID(), got)
		}
		th.Barrier()
	})
}

func TestLocalAllocRemoteAccess(t *testing.T) {
	mustRun(t, cfg(4, 2, transport.LAPI(), DefaultCache()), func(th *Thread) {
		var a *SharedArray
		if th.ID() == 3 {
			a = th.LocalAlloc("L", 16, 8)
			for i := int64(0); i < 16; i++ {
				th.PutUint64(a.At(i), uint64(100+i))
			}
			th.rt.nodes[0].collective = a
		}
		th.Barrier()
		if a == nil {
			a = th.rt.nodes[0].collective.(*SharedArray)
		}
		if a.Owner(5) != 3 {
			t.Errorf("LocalAlloc owner = %d, want 3", a.Owner(5))
		}
		if got := th.GetUint64(a.At(5)); got != 105 {
			t.Errorf("thread %d: L[5] = %d", th.ID(), got)
		}
		th.Barrier()
	})
}

func TestFreeInvalidatesCacheEverywhere(t *testing.T) {
	var entriesBefore, entriesAfter int
	mustRun(t, cfg(2, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 32, 8, 16)
		th.Barrier()
		if th.ID() == 0 {
			th.GetUint64(a.At(20)) // populate cache for node 1's chunk
			th.GetUint64(a.At(21))
			entriesBefore = th.ns.cache.Len()
		}
		th.Barrier()
		if th.ID() == 0 {
			th.Free(a)
			entriesAfter = th.ns.cache.Len()
		}
		th.Barrier()
	})
	if entriesBefore != 1 {
		t.Fatalf("entries before free = %d, want 1", entriesBefore)
	}
	if entriesAfter != 0 {
		t.Fatalf("entries after free = %d, want 0 (eager invalidation)", entriesAfter)
	}
}

// After free + realloc reusing the same address, a correct runtime
// must never serve stale cached data.
func TestFreeReallocNoStaleCache(t *testing.T) {
	mustRun(t, cfg(2, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 32, 8, 16)
		if a.Owner(20) == th.ID() {
			th.PutUint64(a.At(20), 111)
		}
		th.Barrier()
		if th.ID() == 0 {
			if got := th.GetUint64(a.At(20)); got != 111 {
				t.Errorf("A[20] = %d", got)
			}
			th.Free(a)
		}
		th.Barrier()
		b := th.AllAlloc("B", 32, 8, 16) // likely reuses A's chunks
		if b.Owner(20) == th.ID() {
			th.PutUint64(b.At(20), 222)
		}
		th.Barrier()
		if got := th.GetUint64(b.At(20)); got != 222 {
			t.Errorf("thread %d: B[20] = %d (stale data?)", th.ID(), got)
		}
		th.Barrier()
	})
}

func TestUseAfterFreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected use-after-free panic")
		}
	}()
	rt, err := NewRuntime(cfg(2, 2, transport.GM(), DefaultCache()))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = rt.Run(func(th *Thread) {
		a := th.AllAlloc("A", 32, 8, 16)
		th.Barrier()
		if th.ID() == 0 {
			th.Free(a)
			th.GetUint64(a.At(20))
		}
		th.Barrier()
	})
}

func TestBarrierSynchronizes(t *testing.T) {
	const threads, nodes, rounds = 8, 4, 5
	counters := make([]int, threads)
	mustRun(t, cfg(threads, nodes, transport.GM(), NoCache()), func(th *Thread) {
		for r := 0; r < rounds; r++ {
			// Unequal work before the barrier.
			th.Compute(sim.Time(th.ID()+1) * 10 * sim.Us)
			counters[th.ID()]++
			th.Barrier()
			// After the barrier every thread must have finished round r.
			for id, c := range counters {
				if c < r+1 {
					t.Errorf("round %d: thread %d saw counter[%d]=%d", r, th.ID(), id, c)
				}
			}
			th.Barrier()
		}
	})
}

func TestBarrierSingleNode(t *testing.T) {
	mustRun(t, cfg(4, 1, transport.GM(), NoCache()), func(th *Thread) {
		for i := 0; i < 3; i++ {
			th.Barrier()
		}
	})
}

func TestBarrierImpliesFence(t *testing.T) {
	mustRun(t, cfg(2, 2, transport.GM(), NoCache()), func(th *Thread) {
		a := th.AllAlloc("A", 4, 8, 2)
		if th.ID() == 0 {
			th.PutUint64(a.At(2), 42) // remote, async
		}
		th.Barrier()
		if th.ID() == 1 {
			if got := th.GetUint64(a.At(2)); got != 42 {
				t.Errorf("A[2] = %d after barrier", got)
			}
		}
		th.Barrier()
	})
}

func TestLockMutualExclusion(t *testing.T) {
	const threads, nodes = 8, 4
	inside := 0
	maxInside := 0
	mustRun(t, cfg(threads, nodes, transport.GM(), NoCache()), func(th *Thread) {
		l := th.AllLockAlloc("L")
		for i := 0; i < 3; i++ {
			th.Lock(l)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			th.Compute(5 * sim.Us)
			inside--
			th.Unlock(l)
		}
		th.Barrier()
	})
	if maxInside != 1 {
		t.Fatalf("lock admitted %d holders", maxInside)
	}
}

func TestLockCriticalSectionCounter(t *testing.T) {
	// A shared counter incremented under a lock must not lose updates.
	const threads, nodes, per = 6, 3, 4
	mustRun(t, cfg(threads, nodes, transport.LAPI(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("ctr", 1, 8, 1)
		l := th.AllLockAlloc("L")
		th.Barrier()
		for i := 0; i < per; i++ {
			th.Lock(l)
			v := th.GetUint64(a.At(0))
			th.PutUint64(a.At(0), v+1)
			th.Fence()
			th.Unlock(l)
		}
		th.Barrier()
		if got := th.GetUint64(a.At(0)); got != threads*per {
			t.Errorf("thread %d: counter = %d, want %d", th.ID(), got, threads*per)
		}
		th.Barrier()
	})
}

func TestDeterministicElapsed(t *testing.T) {
	run := func() sim.Time {
		st := mustRun(t, cfg(8, 4, transport.GM(), DefaultCache()), func(th *Thread) {
			a := th.AllAlloc("A", 256, 8, 8)
			th.Barrier()
			for i := 0; i < 50; i++ {
				idx := int64(th.Rand().Intn(256))
				th.GetUint64(a.At(idx))
			}
			th.Barrier()
		})
		return st.Elapsed
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

// Cache on vs off must not change program results, only timing — and
// with the cache on, a random-access workload must get faster.
func TestCacheImprovesRandomAccess(t *testing.T) {
	run := func(cc CacheConfig) (sim.Time, uint64) {
		var sum uint64
		st := mustRun(t, cfg(8, 4, transport.GM(), cc), func(th *Thread) {
			a := th.AllAlloc("A", 512, 8, 4)
			for i := int64(0); i < 512; i++ {
				if a.Owner(i) == th.ID() {
					th.PutUint64(a.At(i), uint64(i))
				}
			}
			th.Barrier()
			local := uint64(0)
			for i := 0; i < 100; i++ {
				idx := int64(th.Rand().Intn(512))
				local += th.GetUint64(a.At(idx))
			}
			th.Barrier()
			if th.ID() == 0 {
				sum = local
			}
		})
		return st.Elapsed, sum
	}
	tOff, sumOff := run(NoCache())
	tOn, sumOn := run(DefaultCache())
	if sumOff != sumOn {
		t.Fatalf("cache changed results: %d vs %d", sumOff, sumOn)
	}
	if !(tOn < tOff) {
		t.Fatalf("cache did not speed up random access: on=%v off=%v", tOn, tOff)
	}
}

func TestPinnedTablesStaySmall(t *testing.T) {
	// The paper (§4.5): ~10 pinned entries suffice for well-behaved
	// apps. Two arrays → at most 2 pinned regions per node.
	st := mustRun(t, cfg(4, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 64, 8, 8)
		b := th.AllAlloc("B", 64, 8, 8)
		th.Barrier()
		for i := int64(0); i < 64; i++ {
			th.GetUint64(a.At(i))
			th.GetUint64(b.At(i))
		}
		th.Barrier()
	})
	for n, peak := range st.PinnedPeak {
		if peak > 2 {
			t.Errorf("node %d pinned %d regions, want <= 2", n, peak)
		}
	}
}

func TestRunStatsCounts(t *testing.T) {
	st := mustRun(t, cfg(2, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 32, 8, 16)
		th.Barrier()
		if th.ID() == 0 {
			th.GetUint64(a.At(20))
			th.PutUint64(a.At(20), 5)
		}
		th.Barrier()
	})
	if st.Gets != 1 || st.Puts != 1 {
		t.Fatalf("gets=%d puts=%d", st.Gets, st.Puts)
	}
	if st.Messages == 0 || st.NetBytes == 0 {
		t.Fatal("no traffic recorded")
	}
	if st.Elapsed <= 0 {
		t.Fatal("no elapsed time")
	}
}

// Rendezvous path: transfers beyond EagerMax must work and be
// reflected as RDMA ops.
func TestLargeTransferRendezvous(t *testing.T) {
	prof := transport.GM()
	size := int64(prof.EagerMax) + 4096
	st := mustRun(t, cfg(2, 2, prof, NoCache()), func(th *Thread) {
		a := th.AllAlloc("big", 2*size, 1, size) // thread 0 first half, thread 1 second
		th.Barrier()
		if th.ID() == 0 {
			src := make([]byte, size)
			for i := range src {
				src[i] = byte(i)
			}
			th.PutBulk(a.At(size), src) // rendezvous PUT to node 1
			th.Fence()
			dst := make([]byte, size)
			th.GetBulk(dst, a.At(size)) // rendezvous GET
			if !bytes.Equal(dst, src) {
				t.Error("large transfer corrupted")
			}
		}
		th.Barrier()
	})
	if st.RDMAOps < 2 {
		t.Fatalf("rendezvous should use RDMA, got %d ops", st.RDMAOps)
	}
}

// With a cache, the second large transfer skips the RTS/RTR roundtrip.
func TestRendezvousPopulatesCache(t *testing.T) {
	prof := transport.GM()
	size := int64(prof.EagerMax) + 4096
	var first, second sim.Time
	mustRun(t, cfg(2, 2, prof, DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("big", 2*size, 1, size)
		th.Barrier()
		if th.ID() == 0 {
			buf := make([]byte, size)
			t0 := th.Now()
			th.GetBulk(buf, a.At(size))
			first = th.Now() - t0
			t0 = th.Now()
			th.GetBulk(buf, a.At(size))
			second = th.Now() - t0
		}
		th.Barrier()
	})
	if !(second < first) {
		t.Fatalf("second large GET %v not faster than first %v", second, first)
	}
}

func TestFlatBarrierCorrectAndSlower(t *testing.T) {
	run := func(flat bool, nodes int) sim.Time {
		c := cfg(nodes, nodes, transport.GM(), NoCache())
		c.FlatBarrier = flat
		st := mustRun(t, c, func(th *Thread) {
			for i := 0; i < 4; i++ {
				th.Barrier()
			}
		})
		return st.Elapsed
	}
	// Correctness at several sizes (synchronization asserted by the
	// shared-counter pattern elsewhere; here: completes, no deadlock).
	for _, n := range []int{1, 2, 5, 16} {
		run(true, n)
	}
	// Scalability: at 64 nodes the O(n) master/slave barrier must be
	// slower than O(log n) dissemination — the design choice the
	// hierarchical barrier encodes.
	flat, diss := run(true, 64), run(false, 64)
	if flat <= diss {
		t.Fatalf("flat barrier %v not slower than dissemination %v at 64 nodes", flat, diss)
	}
}

func TestFlatBarrierSynchronizes(t *testing.T) {
	c := cfg(8, 4, transport.GM(), NoCache())
	c.FlatBarrier = true
	counters := make([]int, 8)
	mustRun(t, c, func(th *Thread) {
		for r := 0; r < 3; r++ {
			th.Compute(sim.Time(th.ID()+1) * 5 * sim.Us)
			counters[th.ID()]++
			th.Barrier()
			for id, cv := range counters {
				if cv < r+1 {
					t.Errorf("round %d: thread %d saw counter[%d]=%d", r, th.ID(), id, cv)
				}
			}
			th.Barrier()
		}
	})
}

func TestForAllCoversExactlyOwnedIndices(t *testing.T) {
	const threads, nodes, elems = 4, 2, 45
	visited := make([][]int64, threads)
	mustRun(t, cfg(threads, nodes, transport.GM(), NoCache()), func(th *Thread) {
		a := th.AllAlloc("A", elems, 8, 7)
		th.ForAll(a, func(i int64) {
			visited[th.ID()] = append(visited[th.ID()], i)
			if a.Owner(i) != th.ID() {
				t.Errorf("thread %d visited foreign index %d", th.ID(), i)
			}
		})
		th.Barrier()
	})
	seen := map[int64]bool{}
	for _, vs := range visited {
		for i := 1; i < len(vs); i++ {
			if vs[i] <= vs[i-1] {
				t.Fatalf("indices not ascending: %v", vs)
			}
		}
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("index %d visited twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != elems {
		t.Fatalf("covered %d indices, want %d", len(seen), elems)
	}
}

func TestForAllHomeArray(t *testing.T) {
	count := 0
	mustRun(t, cfg(4, 2, transport.GM(), NoCache()), func(th *Thread) {
		var a *SharedArray
		if th.ID() == 2 {
			a = th.LocalAlloc("L", 10, 8)
			th.rt.nodes[0].collective = a
		}
		th.Barrier()
		if a == nil {
			a = th.rt.nodes[0].collective.(*SharedArray)
		}
		th.ForAll(a, func(i int64) { count++ })
		th.Barrier()
	})
	if count != 10 {
		t.Fatalf("home ForAll visited %d, want 10 (only the home thread)", count)
	}
}

// A GET request can reach a node before the allocation notification
// for its object: the handler must requeue the message and succeed
// once the notification lands, not crash or drop it.
func TestHandlerRequeuesUntilNotifyArrives(t *testing.T) {
	rt, err := NewRuntime(cfg(3, 3, transport.GM(), NoCache()))
	if err != nil {
		t.Fatal(err)
	}
	h := svd.Handle{Part: 0, Index: 0}
	done := sim.NewCompletion(rt.K, "early-get")
	rt.K.Spawn("injector", func(p *sim.Proc) {
		rt.M.SendAM(p, 0, 1, hGetReq, &getReq{H: h, Off: 0, Size: 8, Done: done}, nil, 0)
	})
	rt.K.Spawn("late-alloc", func(p *sim.Proc) {
		p.Sleep(50 * sim.Us) // long after the GET request arrived
		l := rt.layout(8, 4, 8)
		cb := rt.nodes[1].installArray(h, svd.KindArray, "late", l)
		rt.nodes[1].tn.Mem.Write(cb.LocalBase, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	})
	if err := rt.K.Run(); err != nil {
		t.Fatal(err)
	}
	if !done.Done() {
		t.Fatal("requeued GET never completed")
	}
	if got := done.Bytes(); got[0] != 1 || got[7] != 8 {
		t.Fatalf("requeued GET returned %v", got)
	}
	if done.CompletedAt() < 50*sim.Us {
		t.Fatalf("GET completed at %v, before the allocation existed", done.CompletedAt())
	}
}

// Portability: on transports without RDMA (BlueGene/L, TCP) the
// runtime must stay correct with the cache requested — it simply never
// engages — and large transfers stream through the eager path.
func TestNonRDMATransportsPortable(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.BGL(), transport.TCP()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			tpn := prof.ThreadsPerNode
			st := mustRun(t, cfg(4*tpn, 4, prof, DefaultCache()), func(th *Thread) {
				a := th.AllAlloc("A", 256, 8, 8)
				th.ForAll(a, func(i int64) { th.PutUint64(a.At(i), uint64(i)*3) })
				th.Barrier()
				for i := int64(0); i < 256; i += 17 {
					if got := th.GetUint64(a.At(i)); got != uint64(i)*3 {
						t.Errorf("A[%d] = %d", i, got)
					}
				}
				// A transfer beyond EagerMax must stream eagerly, not
				// attempt RDMA.
				big := th.AllAlloc("big", int64(prof.EagerMax)*2+8192, 1, int64(prof.EagerMax)+4096)
				th.Barrier()
				if th.ID() == 0 {
					buf := make([]byte, prof.EagerMax+4096)
					th.GetBulk(buf, big.At(int64(prof.EagerMax)+4096))
				}
				th.Barrier()
			})
			if st.RDMAOps != 0 {
				t.Fatalf("%s issued %d RDMA ops without hardware", prof.Name, st.RDMAOps)
			}
			if st.Cache.Lookups() != 0 {
				t.Fatalf("%s consulted a cache that cannot help", prof.Name)
			}
		})
	}
}

// On BlueGene/L's torus, farther nodes cost more hops; sanity-check
// the route model feeds through to latency.
func TestTorusDistanceMatters(t *testing.T) {
	lat := func(dst int64) sim.Time {
		var d sim.Time
		mustRun(t, cfg(64, 64, transport.BGL(), NoCache()), func(th *Thread) {
			a := th.AllAlloc("A", 64, 8, 1) // one element per thread/node
			th.Barrier()
			if th.ID() == 0 {
				t0 := th.Now()
				th.GetUint64(a.At(dst))
				d = th.Now() - t0
			}
			th.Barrier()
		})
		return d
	}
	near, far := lat(1), lat(42) // node 42 = (2,2,2) in a 4x4x4 torus
	if far <= near {
		t.Fatalf("far torus GET %v not slower than near %v", far, near)
	}
}

// Lock-free atomic increments must never lose updates, across nodes
// and transports — including LAPI, whose parallel AM handler contexts
// could otherwise interleave a read-modify-write.
func TestAtomicAddNoLostUpdates(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			const threads, nodes, per = 8, 4, 25
			mustRun(t, cfg(threads, nodes, prof, DefaultCache()), func(th *Thread) {
				ctr := th.AllAlloc("ctr", 4, 8, 1) // counter on thread 0 + spares
				th.Barrier()
				for i := 0; i < per; i++ {
					th.AtomicAddU64(ctr.At(0), 1)
				}
				th.Barrier()
				if got := th.GetUint64(ctr.At(0)); got != threads*per {
					t.Errorf("thread %d: counter = %d, want %d", th.ID(), got, threads*per)
				}
				th.Barrier()
			})
		})
	}
}

func TestAtomicAddReturnsOldValue(t *testing.T) {
	mustRun(t, cfg(2, 2, transport.GM(), NoCache()), func(th *Thread) {
		a := th.AllAlloc("a", 2, 8, 1)
		th.Barrier()
		if th.ID() == 0 {
			// Element 1 is on thread/node 1: remote.
			if old := th.AtomicAddU64(a.At(1), 10); old != 0 {
				t.Errorf("first old = %d", old)
			}
			if old := th.AtomicAddU64(a.At(1), 5); old != 10 {
				t.Errorf("second old = %d", old)
			}
			if got := th.GetUint64(a.At(1)); got != 15 {
				t.Errorf("final = %d", got)
			}
		}
		th.Barrier()
	})
}

func TestAtomicAddLocalFastPath(t *testing.T) {
	st := mustRun(t, cfg(2, 1, transport.GM(), NoCache()), func(th *Thread) {
		a := th.AllAlloc("a", 2, 8, 1)
		th.Barrier()
		th.AtomicAddU64(a.At(int64(th.ID())), 1) // both elements node-local
		th.Barrier()
	})
	if st.Messages != 0 {
		t.Fatalf("local atomics sent %d messages", st.Messages)
	}
}

func TestRunTwiceRejected(t *testing.T) {
	rt, err := NewRuntime(cfg(2, 1, transport.GM(), NoCache()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(th *Thread) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(func(th *Thread) {}); err == nil {
		t.Fatal("second Run accepted")
	}
}

// Tracing integration: a traced run records the expected states with
// plausible durations and costs no virtual time.
func TestTraceIntegration(t *testing.T) {
	run := func(tr *trace.Trace) sim.Time {
		c := cfg(4, 2, transport.GM(), DefaultCache())
		c.Trace = tr
		st := mustRun(t, c, func(th *Thread) {
			a := th.AllAlloc("A", 32, 8, 8)
			th.Barrier()
			th.Compute(5 * sim.Us)
			if th.ID() == 0 {
				th.GetUint64(a.At(17)) // remote
				th.PutUint64(a.At(17), 1)
			}
			th.Barrier()
		})
		return st.Elapsed
	}
	tr := trace.New()
	traced := run(tr)
	untraced := run(nil)
	if traced != untraced {
		t.Fatalf("tracing changed virtual time: %v vs %v", traced, untraced)
	}
	totals := tr.TotalByState()
	if totals[trace.StateCompute] < 4*5*sim.Us {
		t.Errorf("compute time %v under-recorded", totals[trace.StateCompute])
	}
	if totals[trace.StateGetWait] <= 0 {
		t.Error("no GET wait recorded")
	}
	if totals[trace.StatePut] <= 0 {
		t.Error("no PUT time recorded")
	}
	if totals[trace.StateBarrier] <= 0 {
		t.Error("no barrier time recorded")
	}
}

// Transfers exactly at the eager limit stay eager; one byte more goes
// rendezvous (and therefore RDMA even without a warm cache).
func TestEagerRendezvousBoundary(t *testing.T) {
	prof := transport.GM()
	rdmaOps := func(size int64) int64 {
		st := mustRun(t, cfg(2, 2, prof, NoCache()), func(th *Thread) {
			a := th.AllAlloc("A", 2*size, 1, size)
			th.Barrier()
			if th.ID() == 0 {
				buf := make([]byte, size)
				th.GetBulk(buf, a.At(size))
			}
			th.Barrier()
		})
		return st.RDMAOps
	}
	if n := rdmaOps(int64(prof.EagerMax)); n != 0 {
		t.Fatalf("transfer at the eager limit used RDMA (%d ops)", n)
	}
	if n := rdmaOps(int64(prof.EagerMax) + 1); n == 0 {
		t.Fatal("transfer over the eager limit did not use rendezvous RDMA")
	}
}

func TestFloatAccessorsAndFill(t *testing.T) {
	mustRun(t, cfg(4, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("F", 32, 8, 8)
		th.Barrier()
		if th.ID() == 0 {
			th.PutFloat64(a.At(20), 3.25) // remote element
			th.Fence()
			if got := th.GetFloat64(a.At(20)); got != 3.25 {
				t.Errorf("float roundtrip = %v", got)
			}
			th.Fill(a.At(8), 8, 0xAB) // spans threads 1 and 2
			th.Fence()
			for i := int64(8); i < 16; i++ {
				b := th.Get(a.At(i))
				for _, x := range b {
					if x != 0xAB {
						t.Errorf("Fill missed F[%d]: %v", i, b)
					}
				}
			}
		}
		th.Barrier()
	})
}

func TestTryLock(t *testing.T) {
	mustRun(t, cfg(4, 2, transport.GM(), NoCache()), func(th *Thread) {
		l := th.AllLockAlloc("TL")
		th.Barrier()
		if th.ID() == 0 { // home-node thread
			if !th.TryLock(l) {
				t.Error("first TryLock failed")
			}
		}
		th.Barrier()
		if th.ID() == 3 { // remote thread: lock is held
			if th.TryLock(l) {
				t.Error("TryLock acquired a held lock")
			}
		}
		th.Barrier()
		if th.ID() == 0 {
			th.Unlock(l)
		}
		th.Barrier()
		if th.ID() == 3 { // remote thread: now free
			if !th.TryLock(l) {
				t.Error("TryLock failed on a free lock")
			}
			th.Unlock(l)
		}
		th.Barrier()
	})
}

// Under contention, exactly one TryLock in a simultaneous wave wins.
func TestTryLockContention(t *testing.T) {
	wins := 0
	mustRun(t, cfg(8, 4, transport.LAPI(), NoCache()), func(th *Thread) {
		l := th.AllLockAlloc("TLC")
		th.Barrier()
		if th.TryLock(l) {
			wins++
		}
		th.Barrier()
	})
	if wins != 1 {
		t.Fatalf("%d TryLocks succeeded, want exactly 1", wins)
	}
}
