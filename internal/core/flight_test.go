package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"xlupc/internal/fault"
	"xlupc/internal/flight"
	"xlupc/internal/sim"
	"xlupc/internal/transport"
)

// parseDump decodes the JSONL half of a flight dump and verifies every
// line is either a JSON object, a '#' comment, or blank.
func parseDump(t *testing.T, dump string) []flight.Record {
	t.Helper()
	var recs []flight.Record
	for _, ln := range strings.Split(dump, "\n") {
		switch {
		case strings.HasPrefix(ln, "{"):
			var r flight.Record
			if err := json.Unmarshal([]byte(ln), &r); err != nil {
				t.Fatalf("dump line %q is not valid JSON: %v", ln, err)
			}
			recs = append(recs, r)
		case ln == "" || strings.HasPrefix(ln, "#"):
		default:
			t.Fatalf("dump line %q is neither JSON, blank, nor '#'-prefixed", ln)
		}
	}
	return recs
}

// The acceptance test of ISSUE 6: a recorder-on chaos run that dies of
// a TransportError must auto-dump a JSONL tail that names the failing
// (src, dst, seq, class) op.
func TestFlightDumpNamesTransportFailure(t *testing.T) {
	var dump bytes.Buffer
	fc := fault.Config{Drop: 1}
	c := chaosCfg(fc, transport.GM())
	c.Rel = &transport.RelConfig{RTO: 20 * sim.Us, MaxRetries: 3, HeaderBytes: 8}
	c.Flight = &flight.Config{Dump: &dump}
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		a := th.AllAlloc("A", 64, 8, 8)
		th.Barrier()
		th.GetUint64(a.At(63)) // remote: can never complete
		th.Barrier()
	})
	var te *transport.TransportError
	if !errors.As(err, &te) {
		t.Fatalf("want TransportError, got %v", err)
	}
	if dump.Len() == 0 {
		t.Fatal("failed run produced no flight dump")
	}
	recs := parseDump(t, dump.String())
	if len(recs) == 0 {
		t.Fatal("flight dump contains no JSONL records")
	}
	// Every record belongs to a node the failure involves.
	for _, r := range recs {
		if r.Node != te.Src && r.Node != te.Dst {
			t.Fatalf("dump includes node %d, but the failure involves only %d and %d", r.Node, te.Src, te.Dst)
		}
	}
	// The tail must name the op that exhausted its budget.
	var found *flight.Record
	for i := range recs {
		r := &recs[i]
		if r.Kind == "retry_fail" {
			found = r
			break
		}
	}
	if found == nil {
		t.Fatalf("dump has no retry_fail record:\n%s", dump.String())
	}
	if int(found.Src) != te.Src || int(found.Dst) != te.Dst ||
		found.Seq != te.Seq || found.Class != te.Class {
		t.Fatalf("retry_fail record %+v does not match TransportError %+v", found, te)
	}
	if int64(found.Arg) != int64(te.Attempts) {
		t.Fatalf("retry_fail attempts %d, TransportError says %d", found.Arg, te.Attempts)
	}
	// The human tail must name the kind too.
	if !strings.Contains(dump.String(), "retry_fail") || !strings.Contains(dump.String(), "UNDELIVERABLE") {
		t.Fatalf("human tail does not describe the failure:\n%s", dump.String())
	}
}

// A CrashFail abort must dump the crashed node's tail, including the
// crash epoch event.
func TestFlightDumpNamesCrashFailure(t *testing.T) {
	var dump bytes.Buffer
	c := crashCfg(transport.GM())
	c.Crash.Mode = CrashFail
	c.Flight = &flight.Config{Dump: &dump}
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		a := th.AllAlloc("A", 256, 8, 32)
		for j := int64(0); j < 256; j++ {
			if a.Owner(j) == th.ID() {
				th.PutUint64(a.At(j), uint64(j))
			}
		}
		th.Barrier()
		for i := 0; i < 200; i++ {
			th.GetUint64(a.At(int64(th.Rand().Intn(256))))
		}
		th.Barrier()
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	recs := parseDump(t, dump.String())
	if len(recs) == 0 {
		t.Fatal("CrashFail run produced no flight records")
	}
	var sawCrash bool
	for _, r := range recs {
		if r.Node != ce.Node {
			t.Fatalf("dump includes node %d, but the failure involves only node %d", r.Node, ce.Node)
		}
		if r.Kind == "crash" {
			sawCrash = true
		}
	}
	if !sawCrash {
		t.Fatalf("crashed node's tail has no crash event:\n%s", dump.String())
	}
}

// A recorder attached to a run must not change a single virtual-time
// observable: RunStats must be bit-identical with and without it, on a
// chaos-rich workload exercising drops, duplicates, crashes, evictions
// and coalescing.
func TestFlightRecorderIsVirtualTimeInvisible(t *testing.T) {
	run := func(withFlight bool) RunStats {
		c := crashCfg(transport.GM())
		c.Fault = &fault.Config{Drop: 0.05, Duplicate: 0.05, Delay: 0.1, DelayMax: 8 * sim.Us}
		if withFlight {
			c.Flight = &flight.Config{PerNode: 128}
		}
		rt, err := NewRuntime(c)
		if err != nil {
			t.Fatal(err)
		}
		st, err := rt.Run(func(th *Thread) {
			a := th.AllAlloc("A", 256, 8, 32)
			for j := int64(0); j < 256; j++ {
				if a.Owner(j) == th.ID() {
					th.PutUint64(a.At(j), uint64(j)*5+3)
				}
			}
			th.Barrier()
			for i := 0; i < 150; i++ {
				th.GetUint64(a.At(int64(th.Rand().Intn(256))))
			}
			th.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		if withFlight {
			total := uint64(0)
			for n := 0; n < rt.FlightRecorder().Nodes(); n++ {
				total += rt.FlightRecorder().Recorded(n)
			}
			if total == 0 {
				t.Fatal("recorder attached but nothing recorded")
			}
		}
		return st
	}
	off, on := fmt.Sprintf("%+v", run(false)), fmt.Sprintf("%+v", run(true))
	if off != on {
		t.Fatalf("flight recorder changed the run:\noff %s\non  %s", off, on)
	}
}

// An on-demand capture (no failure) must dump every node.
func TestFlightOnDemandCapture(t *testing.T) {
	c := chaosCfg(fault.Config{Drop: 0.05, Duplicate: 0.05}, transport.GM())
	c.Flight = &flight.Config{PerNode: 64, Tail: 16}
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		a := th.AllAlloc("A", 128, 8, 16)
		th.Barrier()
		for i := 0; i < 60; i++ {
			th.GetUint64(a.At(int64(th.Rand().Intn(128))))
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := rt.WriteFlightDump(&dump, nil); err != nil {
		t.Fatal(err)
	}
	recs := parseDump(t, dump.String())
	nodes := make(map[int]bool)
	for _, r := range recs {
		nodes[r.Node] = true
	}
	if len(nodes) != c.Nodes {
		t.Fatalf("on-demand capture covered %d nodes, want %d", len(nodes), c.Nodes)
	}
}
