package core

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"xlupc/internal/transport"
)

// The strongest end-to-end property: a randomly generated barrier-
// synchronized UPC program produces exactly the memory contents a
// trivial sequential reference model predicts, on every transport,
// with the cache on or off, under either pinning policy.
//
// Program shape: E epochs; in each epoch every thread overwrites a
// random subset of its own elements with values derived from
// (epoch, index), then reads random elements written in earlier epochs
// and checks them against the reference. Barriers separate epochs, so
// the reference is simply "the latest epoch that wrote the element".
func TestPropertyRandomProgramMatchesReference(t *testing.T) {
	value := func(epoch int, idx int64) uint64 {
		return uint64(epoch+1)*1_000_000 + uint64(idx)
	}
	f := func(seed int64, cacheOn bool, lapi bool) bool {
		const threads, nodes, elems, epochs = 8, 4, 96, 4
		prof := transport.GM()
		if lapi {
			prof = transport.LAPI()
		}
		cc := NoCache()
		if cacheOn {
			cc = CacheConfig{Enabled: true, Capacity: 5} // small: force evictions
		}
		rt, err := NewRuntime(Config{
			Threads: threads, Nodes: nodes, Profile: prof, Cache: cc, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}

		// Reference: lastWriter[i] = last epoch that wrote element i.
		// Writes are chosen deterministically from the seed so the
		// reference can be computed up front.
		writes := make([][]bool, epochs) // [epoch][elem] written?
		rng := rand.New(rand.NewSource(seed))
		for e := range writes {
			writes[e] = make([]bool, elems)
			for i := 0; i < elems; i++ {
				writes[e][i] = rng.Intn(3) == 0
			}
		}
		refAt := func(epoch int, idx int64) (uint64, bool) {
			for e := epoch; e >= 0; e-- {
				if writes[e][idx] {
					return value(e, idx), true
				}
			}
			return 0, false
		}

		okMu := sync.Mutex{}
		ok := true
		_, err = rt.Run(func(th *Thread) {
			a := th.AllAlloc("P", elems, 8, 4)
			myRng := rand.New(rand.NewSource(seed ^ int64(th.ID()+1)))
			for e := 0; e < epochs; e++ {
				th.ForAll(a, func(i int64) {
					if writes[e][i] {
						th.PutUint64(a.At(i), value(e, i))
					}
				})
				th.Barrier()
				for r := 0; r < 10; r++ {
					i := int64(myRng.Intn(elems))
					want, written := refAt(e, i)
					if !written {
						continue // never written: zero or anything prior
					}
					if got := th.GetUint64(a.At(i)); got != want {
						okMu.Lock()
						ok = false
						okMu.Unlock()
						t.Logf("epoch %d thread %d: P[%d]=%d want %d", e, th.ID(), i, got, want)
					}
				}
				th.Barrier()
			}
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Two independent runtimes must be able to run concurrently in one Go
// process without interference — no hidden global state.
func TestRuntimesAreIsolated(t *testing.T) {
	run := func(seed int64, out *uint64, wg *sync.WaitGroup) {
		defer wg.Done()
		rt, err := NewRuntime(Config{
			Threads: 4, Nodes: 2, Profile: transport.GM(), Cache: DefaultCache(), Seed: seed,
		})
		if err != nil {
			t.Error(err)
			return
		}
		var sum uint64
		_, err = rt.Run(func(th *Thread) {
			a := th.AllAlloc("A", 64, 8, 16)
			th.ForAll(a, func(i int64) { th.PutUint64(a.At(i), uint64(i)+uint64(seed)) })
			th.Barrier()
			s := th.AllReduceU64(th.GetUint64(a.At(int64(th.ID())*16)), ReduceSum)
			if th.ID() == 0 {
				sum = s
			}
		})
		if err != nil {
			t.Error(err)
			return
		}
		*out = sum
	}
	var a, b, a2 uint64
	var wg sync.WaitGroup
	wg.Add(2)
	go run(100, &a, &wg)
	go run(200, &b, &wg)
	wg.Wait()
	wg.Add(1)
	run(100, &a2, &wg)
	wg.Wait()
	if a == 0 || b == 0 {
		t.Fatal("runs produced no results")
	}
	if a == b {
		t.Fatal("different seeds produced identical sums; suspicious")
	}
	if a != a2 {
		t.Fatalf("concurrent execution changed results: %d vs %d", a, a2)
	}
}
