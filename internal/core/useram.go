package core

// User-level active messages: the registered-handler hook that lets a
// layer above the runtime (internal/kv) ship its own request/reply
// protocols over the same machinery the runtime's GET/PUT AMs use —
// SVD resolution with requeue-on-unknown, base-address piggybacking
// into the remote address cache, coalescing-aware reply framing and
// span phase attribution all come for free. A handler runs on the
// target node's AM dispatcher (a simulation process in both execution
// modes, so handler-side Sleep and Resource.Acquire are parity-safe)
// and returns the reply payload; request arguments travel as two
// uint64s in the envelope, anything larger belongs in shared memory.

import (
	"fmt"

	"xlupc/internal/mem"
	"xlupc/internal/sim"
	"xlupc/internal/svd"
	"xlupc/internal/telemetry"
	"xlupc/internal/transport"
)

// UserHandlerID names one registered user-AM handler. IDs are a small
// fixed space: a subsystem claims its IDs at startup, before any
// traffic, and a clash panics loudly.
type UserHandlerID uint8

// maxUserHandlers bounds the user handler table.
const maxUserHandlers = 8

// UserHandler executes one user AM at the target node and returns the
// reply payload. The returned slice must be freshly allocated (or
// immutable): concurrent AMs at one node interleave at sleep points,
// so a shared scratch buffer would tear replies.
type UserHandler func(c *UserCtx) []byte

// userReq is the user-AM request envelope. A and B are the operation's
// arguments; H anchors SVD resolution and address piggybacking.
type userReq struct {
	ID       UserHandlerID
	H        svd.Handle
	A, B     uint64
	WantAddr bool            // piggyback the base address on the reply
	Done     *sim.Completion // initiator-side; completed by the reply
}

// userRep carries the handler's reply payload plus the piggybacked
// base address, exactly like getRep.
type userRep struct {
	H     svd.Handle
	Base  mem.Addr
	Epoch uint32
	Done  *sim.Completion
	Pairs []addrPair
}

// HandleUser registers h under id for this run. Must be called before
// any traffic uses the id — from a thread body ahead of its first
// collective is early enough, since registration is host-side and
// costs no virtual time.
func (rt *Runtime) HandleUser(id UserHandlerID, h UserHandler) {
	if int(id) >= maxUserHandlers {
		panic(fmt.Sprintf("core: user handler id %d out of range (max %d)", id, maxUserHandlers-1))
	}
	if rt.userHandlers[id] != nil {
		panic(fmt.Sprintf("core: duplicate user handler registration for id %d", id))
	}
	rt.userHandlers[id] = h
}

// UserCtx is the execution context a UserHandler receives: the target
// node's state, the dispatcher process, and the resolved control block
// of the request's anchor object.
type UserCtx struct {
	rt  *Runtime
	ns  *nodeState
	p   *sim.Proc
	msg *transport.Msg
	req *userReq
	cb  *svd.ControlBlock
}

// Node is the node the handler executes on.
func (c *UserCtx) Node() int { return c.ns.id }

// Src is the requesting node.
func (c *UserCtx) Src() int { return c.msg.Src }

// Args returns the request's two argument words.
func (c *UserCtx) Args() (a, b uint64) { return c.req.A, c.req.B }

// Now is the current virtual time.
func (c *UserCtx) Now() sim.Time { return c.p.Now() }

// Sleep advances the dispatcher (models handler compute).
func (c *UserCtx) Sleep(d sim.Duration) { c.p.Sleep(d) }

// Proc exposes the dispatcher process for blocking primitives
// (Resource.Acquire). Handlers run on the AM dispatcher in both
// execution modes, so blocking here is parity-safe by construction.
func (c *UserCtx) Proc() *sim.Proc { return c.p }

// Acquire takes r on the dispatcher process.
func (c *UserCtx) Acquire(r *sim.Resource) { r.Acquire(c.p) }

// checkLocal bounds-checks a local access against the anchor's chunk.
func (c *UserCtx) checkLocal(off int64, n int) {
	if !c.cb.HasLocal {
		panic(fmt.Sprintf("core: user AM local access to %v on node %d, which owns no piece", c.cb.Handle, c.ns.id))
	}
	if off < 0 || off+int64(n) > int64(c.cb.LocalSize) {
		panic(fmt.Sprintf("core: user AM local access [%d,%d) outside %v chunk of %d bytes",
			off, off+int64(n), c.cb.Handle, c.cb.LocalSize))
	}
}

// ReadLocal reads len(dst) bytes at byte offset off of the anchor
// object's local chunk, paying the same shared-memory cost a local
// thread access would.
func (c *UserCtx) ReadLocal(off int64, dst []byte) {
	c.checkLocal(off, len(dst))
	prof := c.rt.cfg.Profile
	c.p.Sleep(prof.ShmLatency + sim.BytesTime(len(dst), prof.ShmByteTime))
	c.ns.tn.Mem.Read(dst, c.cb.LocalBase+mem.Addr(off))
}

// WriteLocal writes src at byte offset off of the anchor object's
// local chunk.
func (c *UserCtx) WriteLocal(off int64, src []byte) {
	c.checkLocal(off, len(src))
	prof := c.rt.cfg.Profile
	c.p.Sleep(prof.ShmLatency + sim.BytesTime(len(src), prof.ShmByteTime))
	c.ns.tn.Mem.Write(c.cb.LocalBase+mem.Addr(off), src)
}

// NodeLocal returns the node-scoped singleton under key, building it
// on first use — per-node locks and counters for user protocols.
func (c *UserCtx) NodeLocal(key string, build func(k *sim.Kernel) any) any {
	return c.ns.nodeLocal(key, build)
}

// ChunkOffset translates a global element index of the anchor object
// into a byte offset inside this node's chunk, for ReadLocal/WriteLocal.
// Handlers work in the same global indices initiators use; the layout
// arithmetic (block-cyclic distribution, per-thread regions) lives here.
func (c *UserCtx) ChunkOffset(idx int64) int64 {
	l := NewLayout(c.rt.cfg.Threads, c.rt.cfg.ThreadsPerNode(), c.cb.ElemSize, c.cb.Block, c.cb.NumElems)
	return l.ChunkOffset(idx)
}

func (ns *nodeState) nodeLocal(key string, build func(k *sim.Kernel) any) any {
	if ns.user == nil {
		ns.user = make(map[string]any)
	}
	v, ok := ns.user[key]
	if !ok {
		v = build(ns.rt.K)
		ns.user[key] = v
	}
	return v
}

// --- Target-side handlers ----------------------------------------------

// handleUserReq mirrors handleGetReq: resolve, optionally pin and
// advertise, run the user handler, and reply with its payload (paying
// the bounce-buffer copy cost the eager path always pays).
func (rt *Runtime) handleUserReq(p *sim.Proc, n *transport.Node, msg *transport.Msg) {
	ns := rt.nodes[n.ID]
	m := msg.Meta.(*userReq)
	t0 := p.Now()
	cb, requeued := ns.resolve(p, m.H, msg)
	if requeued {
		return
	}
	msg.Span.Phase(telemetry.PhaseSVDResolve, t0, p.Now())
	var base mem.Addr
	var epoch uint32
	if m.WantAddr {
		t0 = p.Now()
		base, epoch = ns.pinChunk(p, cb)
		msg.Span.Phase(telemetry.PhaseRegistration, t0, p.Now())
	}
	h := rt.userHandlers[m.ID]
	if h == nil {
		panic(fmt.Sprintf("core: user AM for unregistered handler id %d", m.ID))
	}
	ctx := UserCtx{rt: rt, ns: ns, p: p, msg: msg, req: m, cb: cb}
	reply := h(&ctx)
	t0 = p.Now()
	p.Sleep(sim.BytesTime(len(reply), rt.cfg.Profile.CopyByteTime))
	msg.Span.Phase(telemetry.PhaseCopy, t0, p.Now())
	pairs, extra := pairsFor(msg, m.H, base, epoch)
	rt.M.ReplyToSpan(p, msg, hUserRep,
		&userRep{H: m.H, Base: base, Epoch: epoch, Done: m.Done, Pairs: pairs}, reply, extra, msg.Span)
}

// handleUserRep mirrors handleGetRep: copy out, absorb piggybacked
// addresses, complete the caller with the payload.
func (rt *Runtime) handleUserRep(p *sim.Proc, n *transport.Node, msg *transport.Msg) {
	ns := rt.nodes[n.ID]
	m := msg.Meta.(*userRep)
	t0 := p.Now()
	p.Sleep(sim.BytesTime(len(msg.Payload), rt.cfg.Profile.CopyByteTime))
	msg.Span.Phase(telemetry.PhaseCopy, t0, p.Now())
	rt.insertPiggyback(p, ns, msg.Src, m.H, m.Base, m.Epoch, m.Pairs, msg.Span)
	m.Done.CompleteBytes(msg.Payload)
}

// --- Initiator side ----------------------------------------------------

// CallAM sends a user AM anchored at array a to node rn and blocks
// until the reply arrives, copying its payload into reply and
// returning the payload length. extra models the wire bytes of the
// operation's arguments beyond the fixed envelope. op labels the span.
func (t *Thread) CallAM(a *SharedArray, rn int, id UserHandlerID, argA, argB uint64, extra int, reply []byte, op string) int {
	span := t.rt.tel.StartSpan(op, t.id, t.ns.id, t.p.Now())
	span.SetProto("am")
	done := sim.NewCompletion(t.rt.K, op)
	t.rt.M.SendAMSpan(t.p, t.ns.id, rn, hUserReq,
		&userReq{ID: id, H: a.h, A: argA, B: argB, WantAddr: t.ns.cache != nil, Done: done}, nil, extra, span)
	t.p.Wait(done)
	n := copy(reply, done.Bytes())
	t.rt.K.Recycle(done) // handler's only reference died with the reply
	span.Finish(t.p.Now())
	return n
}

// CallAMC is CallAM in continuation-passing style; the in-flight
// fields and both steps live in the thread's pre-bound op state.
func (t *Thread) CallAMC(a *SharedArray, rn int, id UserHandlerID, argA, argB uint64, extra int, reply []byte, op string, then func(n int)) {
	span := t.rt.tel.StartSpan(op, t.id, t.ns.id, t.Now())
	span.SetProto("am")
	o := t.ops()
	done := sim.NewCompletion(t.rt.K, op)
	o.udst, o.udone, o.uspan, o.uthen = reply, done, span, then
	t.rt.M.SendAMSpanC(t.c, t.ns.id, rn, hUserReq,
		&userReq{ID: id, H: a.h, A: argA, B: argB, WantAddr: t.ns.cache != nil, Done: done}, nil, extra, span, o.uSendFn)
}

// NodeLocal returns this thread's node-scoped singleton under key,
// building it on first use (see UserCtx.NodeLocal).
func (t *Thread) NodeLocal(key string, build func(k *sim.Kernel) any) any {
	return t.ns.nodeLocal(key, build)
}

// Acquire takes r on the thread (goroutine mode).
func (t *Thread) Acquire(r *sim.Resource) { r.Acquire(t.p) }

// AcquireC is Acquire in continuation-passing style.
func (t *Thread) AcquireC(r *sim.Resource, then func()) { r.AcquireCont(t.c, then) }
