// Package core implements the XLUPC-like UPC runtime of the paper on
// top of the simulated transports: UPC threads mapped onto cluster
// nodes in hybrid mode, shared objects named through the Shared
// Variable Directory, blocking GET/PUT with the remote address cache
// fast path, bulk transfers, fences, hierarchical barriers, shared
// locks, and the dynamic allocation routines with eager cache
// invalidation on free.
package core

import (
	"fmt"

	"xlupc/internal/addrcache"
	"xlupc/internal/fault"
	"xlupc/internal/flight"
	"xlupc/internal/mem"
	"xlupc/internal/telemetry"
	"xlupc/internal/trace"
	"xlupc/internal/transport"
)

// PutCacheMode controls whether PUT operations may use the remote
// address cache. The paper found RDMA-mode PUTs a net loss on LAPI and
// disabled them there (§4.3); Auto follows the profile's choice.
type PutCacheMode int

const (
	PutCacheAuto PutCacheMode = iota
	PutCacheOn
	PutCacheOff
)

// CacheConfig configures the remote address cache.
type CacheConfig struct {
	// Enabled turns the cache machinery on. When false the runtime is
	// the paper's baseline: every remote access goes through the
	// active-message path with no lookups, no piggybacking and no
	// insert costs.
	Enabled bool
	// Capacity is the entry limit: the paper's deployment uses 100,
	// Figure 8 sweeps 4 and 10, 0 forces every lookup to miss (the
	// miss-overhead experiment), and a negative value is unbounded
	// (the full-table ablation).
	Capacity int
	// Policy is the eviction policy (LRU unless ablating).
	Policy addrcache.EvictPolicy
	// PutMode optionally overrides the profile's PUT-caching choice.
	PutMode PutCacheMode
	// Adaptive, when non-nil, replaces the fixed Capacity with per-peer
	// adaptive sizing under Adaptive.Budget total entries (Capacity and
	// Policy are then ignored). Nil keeps the fixed cache bit-identical
	// to the baseline.
	Adaptive *addrcache.AdaptiveConfig
}

// DefaultCache returns the paper's deployed configuration: enabled,
// 100 entries, LRU.
func DefaultCache() CacheConfig {
	return CacheConfig{Enabled: true, Capacity: 100, Policy: addrcache.LRU}
}

// NoCache returns the baseline configuration.
func NoCache() CacheConfig { return CacheConfig{} }

// ExecMode selects how UPC thread bodies execute under the simulation
// kernel.
type ExecMode int

const (
	// ExecGoroutine (the default) backs every thread with a goroutine
	// parked/resumed through the kernel's channel handoff. It supports
	// arbitrary Go control flow in bodies (Runtime.Run) and is the
	// reference semantics.
	ExecGoroutine ExecMode = iota
	// ExecCont runs thread bodies as continuation state-machines
	// scheduled directly on the event heap (Runtime.RunCont): no
	// goroutine, no channels, no per-thread stack — the mode that makes
	// 100k-thread sweeps feasible. Bodies must be written in
	// continuation-passing style against the Thread's ...C methods.
	// Both modes produce bit-identical RunStats for the same workload.
	ExecCont
)

// Config describes one simulated run.
type Config struct {
	// Threads is the number of UPC threads; Nodes the number of
	// cluster nodes. Threads must be a positive multiple of Nodes
	// (hybrid mode places Threads/Nodes on each node; threads on the
	// same node communicate through shared memory).
	Threads int
	Nodes   int
	// Profile selects the transport (transport.GM() or
	// transport.LAPI()). Required.
	Profile *transport.Profile
	// Exec selects goroutine-backed (default) or continuation-mode
	// thread execution; see ExecMode. Run requires ExecGoroutine,
	// RunCont requires ExecCont.
	Exec ExecMode
	// Cache configures the remote address cache.
	Cache CacheConfig
	// Seed drives all pseudo-randomness in the run (workloads,
	// eviction tie-breaks), making runs reproducible.
	Seed int64
	// Trace, when non-nil, receives Paraver-style per-thread state
	// intervals (compute, get-wait, barrier, ...) — the tooling behind
	// the paper's §4.6 Field analysis. Tracing costs no virtual time.
	Trace *trace.Trace
	// Telemetry, when non-nil, receives metrics and per-operation spans
	// from every layer of the run: protocol choices, phase timings,
	// cache/pin/resource statistics. Like Trace it costs no virtual
	// time — a run with telemetry finishes at the identical virtual
	// instant as one without.
	Telemetry *telemetry.Telemetry
	// Pin, when non-nil, overrides the profile's pinning policy and
	// registration limits — the knob behind the pin-everything vs
	// limited-pinning ablation (paper §3.1 and [10]).
	Pin *PinConfig
	// FlatBarrier replaces the hierarchical dissemination barrier with
	// a centralized master/slave barrier (ablation only: O(n) messages
	// serialized through node 0).
	FlatBarrier bool
	// Fault, when non-nil, injects deterministic wire hazards
	// (drop/corrupt/duplicate/delay, NIC stalls) keyed by Seed, and
	// implies the reliable-delivery layer. Nil keeps the perfectly
	// reliable wire with zero added events.
	Fault *fault.Config
	// Rel overrides the reliable-delivery parameters (retransmit
	// timeout, retry budget, framing overhead). Setting it enables the
	// layer even with Fault nil — the zero-loss reliability overhead
	// experiment.
	Rel *transport.RelConfig
	// Coalesce, when non-nil, enables per-destination small-message
	// coalescing for the split-phase API: eager AMs and RDMA
	// descriptors issued through NbGet/NbPut park in a per-(src,dst)
	// buffer and travel as one wire frame, flushed on a size threshold,
	// a virtual-time timer, or a sync/fence. Nil (the default) keeps
	// every message individual and the event stream bit-identical to a
	// build without coalescing.
	Coalesce *transport.CoalConfig
	// Crash, when non-nil, schedules deterministic node crash/restart
	// events keyed by Seed and implies the reliable-delivery layer
	// (retransmits are what carry traffic across a restart window). Nil
	// keeps the crash machinery entirely out of the event stream.
	Crash *CrashConfig
	// Flight, when non-nil, attaches a flight recorder: a fixed-capacity
	// per-node ring of wire-level events (sends, drops, retransmits,
	// NACKs, crashes, ...). Recording is host-side only — it costs no
	// virtual time and leaves the event stream bit-identical. When
	// Flight.Dump is non-nil, a run that ends in a DeadlockError,
	// TransportError or CrashError automatically dumps the last
	// Flight.Tail events of every involved node to it as JSONL plus a
	// '#'-prefixed human-readable tail. Nil keeps the recorder (and its
	// per-site pointer checks' branches) entirely cold.
	Flight *flight.Config
}

// PinConfig overrides memory-registration behaviour.
type PinConfig struct {
	Policy mem.PinPolicy
	// MaxTotal and MaxPerObject override the profile's registration
	// limits when positive; negative removes the limit.
	MaxTotal     int
	MaxPerObject int
	// Evictor selects the PinLimited victim policy; the zero value is
	// the historical LRU, keeping default runs bit-identical.
	Evictor mem.EvictorKind
	// Lazy, when non-nil, enables the lazy-unpin registration cache:
	// Unpin parks registrations in a bounded dead-list and a re-pin of
	// a parked region is a free reuse hit. Nil keeps eager dereg.
	Lazy *mem.LazyConfig
}

// effectiveProfile applies any Pin override to a copy of the profile.
func (c *Config) effectiveProfile() *transport.Profile {
	if c.Pin == nil {
		return c.Profile
	}
	p := *c.Profile
	p.PinPolicy = c.Pin.Policy
	p.PinEvictor = c.Pin.Evictor
	p.PinLazy = c.Pin.Lazy
	switch {
	case c.Pin.MaxTotal > 0:
		p.Reg.MaxTotal = c.Pin.MaxTotal
	case c.Pin.MaxTotal < 0:
		p.Reg.MaxTotal = 0
	}
	switch {
	case c.Pin.MaxPerObject > 0:
		p.Reg.MaxPerObject = c.Pin.MaxPerObject
	case c.Pin.MaxPerObject < 0:
		p.Reg.MaxPerObject = 0
	}
	return &p
}

// ThreadsPerNode reports the hybrid fan-out.
func (c *Config) ThreadsPerNode() int { return c.Threads / c.Nodes }

// Validate checks the configuration.
func (c *Config) Validate() error {
	if c.Profile == nil {
		return fmt.Errorf("core: config needs a transport profile")
	}
	if c.Nodes <= 0 || c.Threads <= 0 {
		return fmt.Errorf("core: need positive threads (%d) and nodes (%d)", c.Threads, c.Nodes)
	}
	if c.Threads%c.Nodes != 0 {
		return fmt.Errorf("core: threads (%d) must be a multiple of nodes (%d)", c.Threads, c.Nodes)
	}
	if c.Crash != nil {
		if err := c.Crash.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// putCacheEnabled resolves the effective PUT-caching choice.
func (c *Config) putCacheEnabled() bool {
	if !c.Cache.Enabled {
		return false
	}
	switch c.Cache.PutMode {
	case PutCacheOn:
		return true
	case PutCacheOff:
		return false
	default:
		return c.Profile.PutCacheEnabled
	}
}
