package core

import (
	"encoding/binary"
	"fmt"

	"xlupc/internal/svd"
)

// SharedArray is the runtime's handle-plus-layout view of a
// distributed shared array. The struct itself carries only universal
// information (the handle and the compiler-known layout); per-node
// local addresses live in each node's SVD replica, exactly as in the
// paper's design.
type SharedArray struct {
	rt   *Runtime
	h    svd.Handle
	l    Layout
	name string
}

// Handle returns the array's universal SVD handle.
func (a *SharedArray) Handle() svd.Handle { return a.h }

// Name returns the diagnostic name given at allocation.
func (a *SharedArray) Name() string { return a.name }

// Len is the number of elements.
func (a *SharedArray) Len() int64 { return a.l.NumElems }

// ElemSize is the element size in bytes.
func (a *SharedArray) ElemSize() int { return a.l.ElemSize }

// Layout exposes the distribution for affinity-aware loops.
func (a *SharedArray) Layout() Layout { return a.l }

// Owner reports the UPC thread element i is affine to (upc_threadof).
func (a *SharedArray) Owner(i int64) int { return a.l.Owner(i) }

// Phase reports upc_phaseof for element i.
func (a *SharedArray) Phase(i int64) int64 { return a.l.Phase(i) }

// At returns a pointer-to-shared referring to element i.
func (a *SharedArray) At(i int64) Ref {
	a.check(i)
	return Ref{A: a, Idx: i}
}

func (a *SharedArray) check(i int64) {
	if i < 0 || i >= a.l.NumElems {
		panic(fmt.Sprintf("core: %s[%d] out of range (len %d)", a.name, i, a.l.NumElems))
	}
}

// Ref is a pointer-to-shared: an (array, element) pair supporting the
// pointer arithmetic the runtime implements for the compiler
// (upc_threadof, upc_phaseof, addition, difference).
type Ref struct {
	A   *SharedArray
	Idx int64
}

// Add advances the pointer n elements.
func (r Ref) Add(n int64) Ref { return r.A.At(r.Idx + n) }

// Diff is the element distance to another pointer into the same array.
func (r Ref) Diff(o Ref) int64 {
	if r.A != o.A {
		panic("core: pointer difference across distinct shared arrays")
	}
	return r.Idx - o.Idx
}

// ThreadOf reports the thread the referenced element is affine to.
func (r Ref) ThreadOf() int { return r.A.Owner(r.Idx) }

// Phase reports the element's position in its block.
func (r Ref) Phase() int64 { return r.A.Phase(r.Idx) }

// String formats the reference for diagnostics.
func (r Ref) String() string { return fmt.Sprintf("%s[%d]", r.A.name, r.Idx) }

// byteOrder is the simulated machines' element encoding.
var byteOrder = binary.LittleEndian
