package core

// Continuation execution mode: every method in this file mirrors its
// blocking counterpart (thread.go, getput.go, nbio.go, barrier.go,
// alloc.go) step for step, so a run under RunCont produces the exact
// kernel event sequence — and therefore bit-identical RunStats — of the
// same workload under Run. When editing one side, edit the other.

import (
	"fmt"

	"xlupc/internal/mem"
	"xlupc/internal/sim"
	"xlupc/internal/svd"
	"xlupc/internal/telemetry"
	"xlupc/internal/trace"
	"xlupc/internal/transport"
)

// ContBody is a continuation-mode program body: invoked once per UPC
// thread, written in continuation-passing style against the Thread's
// ...C methods, calling done exactly once when the thread's program is
// complete.
type ContBody func(t *Thread, done func())

// RunCont executes body once per UPC thread as continuation
// state-machines on the event heap — no goroutines, no channels, no
// per-thread stacks — driving the simulation to completion. It is the
// execution mode that makes 100k-thread sweeps feasible; bodies that
// need arbitrary Go control flow use Run instead. RunCont may be
// called once per Runtime and requires Config.Exec == ExecCont.
func (rt *Runtime) RunCont(body ContBody) (RunStats, error) {
	if rt.ran {
		return RunStats{}, fmt.Errorf("core: Runtime.RunCont called twice; build a fresh Runtime per run")
	}
	if rt.cfg.Exec != ExecCont {
		return RunStats{}, fmt.Errorf("core: Runtime.RunCont needs Config.Exec == ExecCont; use Run for goroutine mode")
	}
	rt.ran = true
	defer rt.K.Shutdown()
	rt.liveBodies = len(rt.threads)
	for _, th := range rt.threads {
		th := th
		rt.K.SpawnCIdx("upc", th.id, func(c *sim.Cont) {
			th.c = c
			body(th, func() {
				th.FenceC(func() { // drain outstanding PUTs before exiting
					c.Finish()
					rt.bodyDone()
				})
			})
		})
	}
	return rt.finishRun(rt.K.Run())
}

// ComputeC is Thread.Compute in continuation-passing style.
func (t *Thread) ComputeC(d sim.Duration, then func()) {
	if d <= 0 {
		then()
		return
	}
	t.rt.cfg.Trace.Begin(t.id, trace.StateCompute, t.Now())
	t.ns.tn.CPU.UseCont(t.c, d, func() {
		t.rt.cfg.Trace.End(t.id, t.Now())
		then()
	})
}

// SleepC is Thread.Sleep in continuation-passing style.
func (t *Thread) SleepC(d sim.Duration, then func()) { t.c.Sleep(d, then) }

// FenceC is Thread.Fence in continuation-passing style.
func (t *Thread) FenceC(then func()) {
	t.SyncAllC(func() {
		if t.fence.Pending() == 0 {
			then()
			return
		}
		span := t.rt.tel.StartSpan("fence", t.id, t.ns.id, t.Now())
		t.rt.cfg.Trace.Begin(t.id, trace.StateFenceWait, t.Now())
		t.fence.WaitC(t.c, func() {
			t.rt.cfg.Trace.End(t.id, t.Now())
			span.Finish(t.Now())
			then()
		})
	})
}

// localCBFast resolves the thread's own node's control block without
// blocking — the overwhelmingly common case, kept allocation-free.
func (t *Thread) localCBFast(a *SharedArray) (*svd.ControlBlock, bool) {
	cb, ok := t.ns.dir.LookupAny(a.h)
	if !ok {
		return nil, false
	}
	if cb.Freed {
		panic(fmt.Sprintf("core: thread %d: access to freed array %s", t.id, a.name))
	}
	return cb, true
}

// localCBC is Thread.localCB in continuation-passing style: the retry
// closure is only built when the allocation notification is still in
// flight.
func (t *Thread) localCBC(a *SharedArray, then func(cb *svd.ControlBlock)) {
	if cb, ok := t.localCBFast(a); ok {
		then(cb)
		return
	}
	var try func()
	try = func() {
		if cb, ok := t.localCBFast(a); ok {
			then(cb)
			return
		}
		t.c.Sleep(1*sim.Us, try)
	}
	t.c.Sleep(1*sim.Us, try)
}

// --- Element accessors -------------------------------------------------

// GetC is Thread.Get in continuation-passing style.
func (t *Thread) GetC(r Ref, then func(data []byte)) {
	dst := make([]byte, r.A.l.ElemSize)
	t.GetBulkC(dst, r, func() { then(dst) })
}

// PutC is Thread.Put in continuation-passing style.
func (t *Thread) PutC(r Ref, data []byte, then func()) {
	if len(data) != r.A.l.ElemSize {
		panic(fmt.Sprintf("core: Put of %d bytes into %s with element size %d",
			len(data), r.A.name, r.A.l.ElemSize))
	}
	t.PutBulkC(r, data, then)
}

// GetUint64C is Thread.GetUint64 in continuation-passing style. The
// value callback parks in the thread's pre-bound op state, so the
// pointer-chase hot path builds no wrapper closure per element.
func (t *Thread) GetUint64C(r Ref, then func(v uint64)) {
	o := t.ops()
	o.u64then = then
	t.GetBulkC(t.w64[:], r, o.u64Fn)
}

// PutUint64C is Thread.PutUint64 in continuation-passing style.
func (t *Thread) PutUint64C(r Ref, v uint64, then func()) {
	byteOrder.PutUint64(t.w64[:], v)
	t.PutBulkC(r, t.w64[:], then)
}

// GetBulkC is Thread.GetBulk in continuation-passing style.
func (t *Thread) GetBulkC(dst []byte, r Ref, then func()) {
	es := int64(r.A.l.ElemSize)
	if int64(len(dst))%es != 0 {
		panic("core: GetBulk length not a multiple of element size")
	}
	n := int64(len(dst)) / es
	if n == 0 {
		then()
		return
	}
	r.A.check(r.Idx + n - 1)
	if r.A.l.ContigRun(r.Idx) >= n {
		// Single contiguous run — every element access and most bulk
		// transfers — skips the loop driver entirely.
		t.getRunC(r.A, r.Idx, dst, then)
		return
	}
	t.getBulkLoopC(dst, r, es, n, then)
}

// getBulkLoopC drives a multi-run GetBulkC. Outlined from GetBulkC so
// the loop closure's captures (which escape to the heap) are only
// allocated on the multi-run path — the single-run fast path above
// must stay allocation-free.
func (t *Thread) getBulkLoopC(dst []byte, r Ref, es, n int64, then func()) {
	idx, off := r.Idx, int64(0)
	sim.Loop(func(next func()) {
		if n == 0 {
			then()
			return
		}
		run := r.A.l.ContigRun(idx)
		if run > n {
			run = n
		}
		lo, hi, i0 := off*es, (off+run)*es, idx
		idx += run
		off += run
		n -= run
		t.getRunC(r.A, i0, dst[lo:hi], next)
	})
}

// PutBulkC is Thread.PutBulk in continuation-passing style.
func (t *Thread) PutBulkC(r Ref, src []byte, then func()) {
	es := int64(r.A.l.ElemSize)
	if int64(len(src))%es != 0 {
		panic("core: PutBulk length not a multiple of element size")
	}
	n := int64(len(src)) / es
	if n == 0 {
		then()
		return
	}
	r.A.check(r.Idx + n - 1)
	if r.A.l.ContigRun(r.Idx) >= n {
		t.putRunC(r.A, r.Idx, src, then)
		return
	}
	t.putBulkLoopC(r, src, es, n, then)
}

// putBulkLoopC is getBulkLoopC for PUTs: see there for why it is a
// separate method.
func (t *Thread) putBulkLoopC(r Ref, src []byte, es, n int64, then func()) {
	idx, off := r.Idx, int64(0)
	sim.Loop(func(next func()) {
		if n == 0 {
			then()
			return
		}
		run := r.A.l.ContigRun(idx)
		if run > n {
			run = n
		}
		lo, hi, i0 := off*es, (off+run)*es, idx
		idx += run
		off += run
		n -= run
		t.putRunC(r.A, i0, src[lo:hi], next)
	})
}

// --- GET/PUT runs (mirror getput.go) -----------------------------------

// localGetDoC performs a local GET against a resolved control block —
// the shared tail of the blocking-twin local path, zero closures: the
// post-sleep step is the thread's pre-bound localGetDone.
func (t *Thread) localGetDoC(cb *svd.ControlBlock, a *SharedArray, idx int64, dst []byte, start sim.Time, then func()) {
	prof := t.rt.cfg.Profile
	span := t.rt.tel.StartSpan("get", t.id, t.ns.id, start)
	span.SetProto("local")
	span.SetBytes(len(dst))
	o := t.ops()
	o.lcb, o.la, o.lidx, o.ldst, o.lspan, o.lthen = cb, a, idx, dst, span, then
	t.c.Sleep(prof.ShmLatency+sim.BytesTime(len(dst), prof.ShmByteTime), o.lGetFn)
}

// getRunC is getRun in continuation-passing style. The fall-through
// after a failed (or absent) cache-hit attempt lives in getSlowC, as a
// method rather than a closure, so the cache-hit fast path allocates
// nothing for code it does not run.
func (t *Thread) getRunC(a *SharedArray, idx int64, dst []byte, then func()) {
	prof := t.rt.cfg.Profile
	size := len(dst)
	rn := a.l.NodeOf(idx)
	start := t.Now()

	if rn == t.ns.id {
		if cb, ok := t.localCBFast(a); ok {
			t.localGetDoC(cb, a, idx, dst, start, then)
			return
		}
		t.localCBC(a, func(cb *svd.ControlBlock) { t.localGetDoC(cb, a, idx, dst, start, then) })
		return
	}

	off := a.l.ChunkOffset(idx)
	span := t.rt.tel.StartSpan("get", t.id, t.ns.id, start)
	span.SetBytes(size)
	t.rt.cfg.Trace.Begin(t.id, trace.StateGetWait, start)
	o := t.ops()
	o.ga, o.grn, o.goff, o.gdst, o.gspan, o.gstart, o.gthen = a, rn, off, dst, span, start, then

	if t.ns.cache != nil {
		o.gt0 = t.Now()
		t.c.Sleep(prof.CacheLookupCost, o.gLookupFn)
		return
	}
	t.getSlowC(a, rn, off, dst, span, o.gFinishFn)
}

// getSlowC is the blocking path's fall-through: everything after the
// cache-hit attempt (or in its absence).
func (t *Thread) getSlowC(a *SharedArray, rn int, off int64, dst []byte, span *telemetry.Span, finish func()) {
	prof := t.rt.cfg.Profile
	size := len(dst)
	if size <= prof.EagerMax || !prof.SupportsRDMA {
		span.SetProto("eager")
		t.eagerGetC(a, rn, off, dst, span, finish)
		return
	}
	span.SetProto("rendezvous")
	t.rendezvousC(a, rn, size, span, func(res rtrResult) {
		if !res.ok {
			span.SetProto("eager")
			t.rt.tel.Add("xlupc_get_fallbacks_total", `reason="pin_refused"`, 1)
			t.eagerGetC(a, rn, off, dst, span, finish)
			return
		}
		t.rt.M.RDMAGetSpanC(t.c, t.ns.id, rn, res.base, res.base+mem.Addr(off), dst, size, res.epoch, span,
			func(data []byte, nack transport.Nack, ok bool) {
				if !ok {
					fallback := func() {
						span.SetProto("eager")
						t.eagerGetC(a, rn, off, dst, span, finish)
					}
					if nack.Stale {
						t.healStaleC(rn, nack.Epoch, "get", span, func(cont bool) {
							if !cont {
								finish()
								return
							}
							t.rt.tel.Add("xlupc_get_fallbacks_total", `reason="stale_epoch"`, 1)
							fallback()
						})
						return
					}
					if t.ns.cache != nil {
						t.ns.cache.Remove(cacheKey(a.h, rn))
					}
					t.rt.tel.Add("xlupc_get_fallbacks_total", `reason="nack"`, 1)
					fallback()
					return
				}
				copy(dst, data)
				finish()
			})
	})
}

// eagerGetC is eagerGet in continuation-passing style: the in-flight
// fields and both steps (request-sent, reply-arrived) live in the
// thread's pre-bound op state, so a cache-miss GET builds no closures.
func (t *Thread) eagerGetC(a *SharedArray, rn int, off int64, dst []byte, span *telemetry.Span, then func()) {
	o := t.ops()
	done := sim.NewCompletion(t.rt.K, "get")
	o.edst, o.edone, o.ethen = dst, done, then
	t.rt.M.SendAMSpanC(t.c, t.ns.id, rn, hGetReq,
		&getReq{H: a.h, Off: off, Size: len(dst), WantAddr: t.ns.cache != nil, Done: done}, nil, 0, span, o.eSendFn)
}

// rendezvousC is rendezvous in continuation-passing style.
func (t *Thread) rendezvousC(a *SharedArray, rn int, size int, span *telemetry.Span, then func(res rtrResult)) {
	done := sim.NewCompletion(t.rt.K, "rts")
	t.rt.M.SendAMSpanC(t.c, t.ns.id, rn, hRTS, &rts{H: a.h, Size: size, Done: done}, nil, 0, span, func() {
		done.WaitC(t.c, func(v any) {
			res := v.(rtrResult)
			t.rt.K.Recycle(done)
			then(res)
		})
	})
}

// localPutDoC performs a local PUT against a resolved control block.
func (t *Thread) localPutDoC(cb *svd.ControlBlock, a *SharedArray, idx int64, src []byte, start sim.Time, then func()) {
	prof := t.rt.cfg.Profile
	span := t.rt.tel.StartSpan("put", t.id, t.ns.id, start)
	span.SetProto("local")
	span.SetBytes(len(src))
	o := t.ops()
	o.lcb, o.la, o.lidx, o.lsrc, o.lspan, o.lthen = cb, a, idx, src, span, then
	t.c.Sleep(prof.ShmLatency+sim.BytesTime(len(src), prof.ShmByteTime), o.lPutFn)
}

// putRunC is putRun in continuation-passing style. Remote PUTs stay
// asynchronous under the fence; watchPut (already kernel-callback
// based) is shared with the blocking path. As with GETs, the eager and
// rendezvous fall-throughs are methods so the cache-hit path does not
// allocate them.
func (t *Thread) putRunC(a *SharedArray, idx int64, src []byte, then func()) {
	prof := t.rt.cfg.Profile
	size := len(src)
	rn := a.l.NodeOf(idx)
	start := t.Now()

	if rn == t.ns.id {
		if cb, ok := t.localCBFast(a); ok {
			t.localPutDoC(cb, a, idx, src, start, then)
			return
		}
		t.localCBC(a, func(cb *svd.ControlBlock) { t.localPutDoC(cb, a, idx, src, start, then) })
		return
	}

	off := a.l.ChunkOffset(idx)
	span := t.rt.tel.StartSpan("put", t.id, t.ns.id, start)
	span.SetBytes(size)
	t.rt.cfg.Trace.Begin(t.id, trace.StatePut, start)
	o := t.ops()
	o.pa, o.prn, o.poff, o.psrc, o.pspan, o.pstart, o.pthen = a, rn, off, src, span, start, then

	if t.ns.cache != nil && t.rt.putCache {
		o.pt0 = t.Now()
		t.c.Sleep(prof.CacheLookupCost, o.pLookupFn)
		return
	}
	t.putSlowC(a, rn, off, src, span, o.pFinishFn)
}

// putEagerC is the eager branch of the blocking putRun fall-through.
func (t *Thread) putEagerC(a *SharedArray, rn int, off int64, src []byte, wantAddr bool, span *telemetry.Span, finish func()) {
	prof := t.rt.cfg.Profile
	span.SetProto("eager")
	t0 := t.Now()
	t.c.Sleep(sim.BytesTime(len(src), prof.CopyByteTime), func() {
		span.Phase(telemetry.PhaseCopy, t0, t.Now())
		data := append([]byte(nil), src...)
		t.fence.Add(1)
		t.rt.M.SendAMSpanC(t.c, t.ns.id, rn, hPutReq,
			&putReq{H: a.h, Off: off, WantAddr: wantAddr, Fence: t.fence}, data, 0, span, finish)
	})
}

// putSlowC is the blocking putRun's fall-through after a failed (or
// absent) PUT-cache attempt.
func (t *Thread) putSlowC(a *SharedArray, rn int, off int64, src []byte, span *telemetry.Span, finish func()) {
	prof := t.rt.cfg.Profile
	size := len(src)
	if size <= prof.EagerMax || !prof.SupportsRDMA {
		t.putEagerC(a, rn, off, src, t.ns.cache != nil, span, finish)
		return
	}
	span.SetProto("rendezvous")
	t.rendezvousC(a, rn, size, span, func(res rtrResult) {
		if !res.ok {
			t.rt.tel.Add("xlupc_put_fallbacks_total", `reason="pin_refused"`, 1)
			t.putEagerC(a, rn, off, src, false, span, finish)
			return
		}
		data := append([]byte(nil), src...)
		t.rt.M.RDMAPutSpanC(t.c, t.ns.id, rn, res.base, res.base+mem.Addr(off), data, res.epoch, span,
			func(remote *sim.Completion) {
				t.fence.Add(1)
				t.watchPut(remote, a, rn, off, data, span, nil)
				finish()
			})
	})
}

// healStaleC is healStale in continuation-passing style; then receives
// false when the run is aborting under CrashFail.
func (t *Thread) healStaleC(rn int, ep uint32, op string, span *telemetry.Span, then func(ok bool)) {
	if t.rt.staleAbort(rn, ep, op, t.Now()) {
		then(false)
		return
	}
	t0 := t.Now()
	n := t.ns.cache.InvalidateNode(int32(rn))
	fin := func() {
		span.Phase(telemetry.PhaseEpochRecovery, t0, t.Now())
		t.rt.staleInvalidated += int64(n)
		t.rt.tel.Add("xlupc_stale_recoveries_total", `op="`+op+`"`, 1)
		t.rt.recordCacheInval(t.ns.id, rn, uint64(ep), n)
		then(true)
	}
	if n > 0 {
		t.c.Sleep(sim.Time(n)*t.rt.cfg.Profile.CacheLookupCost, fin)
		return
	}
	fin()
}

// --- Split-phase operations (mirror nbio.go) ---------------------------

// NbGetC is Thread.NbGet in continuation-passing style.
func (t *Thread) NbGetC(dst []byte, r Ref, then func(h Handle)) {
	es := int64(r.A.l.ElemSize)
	if int64(len(dst))%es != 0 {
		panic("core: NbGet length not a multiple of element size")
	}
	n := int64(len(dst)) / es
	if n == 0 {
		then(Handle{})
		return
	}
	r.A.check(r.Idx + n - 1)
	op := t.newNbOp()
	if r.A.l.ContigRun(r.Idx) >= n {
		t.nbGetRunC(op, r.A, r.Idx, dst, func() { t.nbIssued(op, then) })
		return
	}
	t.nbGetLoopC(op, dst, r, es, n, then)
}

// nbGetLoopC is the multi-run driver of NbGetC, outlined (like
// getBulkLoopC) so its escaping loop captures are not charged to the
// single-run fast path.
func (t *Thread) nbGetLoopC(op *nbOp, dst []byte, r Ref, es, n int64, then func(h Handle)) {
	idx, off := r.Idx, int64(0)
	sim.Loop(func(next func()) {
		if n == 0 {
			t.nbIssued(op, then)
			return
		}
		run := r.A.l.ContigRun(idx)
		if run > n {
			run = n
		}
		lo, hi, i0 := off*es, (off+run)*es, idx
		idx += run
		off += run
		n -= run
		t.nbGetRunC(op, r.A, i0, dst[lo:hi], next)
	})
}

// nbIssued finishes a split-phase issue: hand out a live handle, or
// free the descriptor when every run completed locally (the data is
// already in place).
func (t *Thread) nbIssued(op *nbOp, then func(h Handle)) {
	if len(op.subs) == 0 {
		t.freeNbOp(op)
		then(Handle{})
		return
	}
	t.nbOut = append(t.nbOut, op)
	then(Handle{op: op, gen: op.gen})
}

// NbPutC is Thread.NbPut in continuation-passing style.
func (t *Thread) NbPutC(r Ref, src []byte, then func(h Handle)) {
	es := int64(r.A.l.ElemSize)
	if int64(len(src))%es != 0 {
		panic("core: NbPut length not a multiple of element size")
	}
	n := int64(len(src)) / es
	if n == 0 {
		then(Handle{})
		return
	}
	r.A.check(r.Idx + n - 1)
	op := t.newNbOp()
	if r.A.l.ContigRun(r.Idx) >= n {
		t.nbPutRunC(op, r.A, r.Idx, src, func() { t.nbIssued(op, then) })
		return
	}
	t.nbPutLoopC(op, src, r, es, n, then)
}

// nbPutLoopC is nbGetLoopC for split-phase PUTs.
func (t *Thread) nbPutLoopC(op *nbOp, src []byte, r Ref, es, n int64, then func(h Handle)) {
	idx, off := r.Idx, int64(0)
	sim.Loop(func(next func()) {
		if n == 0 {
			t.nbIssued(op, then)
			return
		}
		run := r.A.l.ContigRun(idx)
		if run > n {
			run = n
		}
		lo, hi, i0 := off*es, (off+run)*es, idx
		idx += run
		off += run
		n -= run
		t.nbPutRunC(op, r.A, i0, src[lo:hi], next)
	})
}

// SyncC is Thread.Sync in continuation-passing style.
func (t *Thread) SyncC(h Handle, then func()) {
	op := h.op
	if op == nil || op.gen != h.gen || op.retired {
		then()
		return
	}
	t.rt.M.FlushCoalescedC(t.c, t.ns.id, func() {
		t.retireC(op, func() {
			for i, o := range t.nbOut {
				if o == op {
					t.nbOut = append(t.nbOut[:i], t.nbOut[i+1:]...)
					break
				}
			}
			t.freeNbOp(op)
			then()
		})
	})
}

// SyncAllC is Thread.SyncAll in continuation-passing style.
func (t *Thread) SyncAllC(then func()) {
	if len(t.nbOut) == 0 {
		then()
		return
	}
	t.rt.M.FlushCoalescedC(t.c, t.ns.id, func() {
		sim.Loop(func(next func()) {
			if len(t.nbOut) == 0 {
				then()
				return
			}
			op := t.nbOut[0]
			t.nbOut[0] = nil
			t.nbOut = t.nbOut[1:]
			t.retireC(op, func() {
				t.freeNbOp(op)
				next()
			})
		})
	})
}

// retireC is retire in continuation-passing style: the handle's
// sub-operations retire in issue order, waiting on each completion and
// running its retire work.
func (t *Thread) retireC(op *nbOp, then func()) {
	if op.retired {
		then()
		return
	}
	op.retired = true
	i := 0
	sim.Loop(func(next func()) {
		if i == len(op.subs) {
			then()
			return
		}
		sub := op.subs[i]
		i++
		fin := func() {
			if sub.finC != nil {
				sub.finC(next)
				return
			}
			if sub.fin != nil {
				sub.fin()
			}
			next()
		}
		if sub.done != nil {
			sub.done.WaitC(t.c, func(any) { fin() })
			return
		}
		fin()
	})
}

// nbGetRunC is nbGetRun in continuation-passing style; the sub's
// retire work is registered as finC so Sync's NACK fallbacks run in
// continuation-passing style too.
func (t *Thread) nbGetRunC(op *nbOp, a *SharedArray, idx int64, dst []byte, then func()) {
	prof := t.rt.cfg.Profile
	size := len(dst)
	rn := a.l.NodeOf(idx)
	start := t.Now()

	if rn == t.ns.id {
		t.localCBC(a, func(cb *svd.ControlBlock) {
			span := t.rt.tel.StartSpan("get", t.id, t.ns.id, start)
			span.SetProto("local")
			span.SetBytes(size)
			t.c.Sleep(prof.ShmLatency+sim.BytesTime(size, prof.ShmByteTime), func() {
				t.ns.tn.Mem.Read(dst, cb.LocalBase+mem.Addr(a.l.ChunkOffset(idx)))
				span.Finish(t.Now())
				t.localGets++
				then()
			})
		})
		return
	}

	if size > prof.EagerMax && prof.SupportsRDMA {
		t.getRunC(a, idx, dst, then)
		return
	}

	off := a.l.ChunkOffset(idx)
	span := t.rt.tel.StartSpan("get", t.id, t.ns.id, start)
	span.SetBytes(size)
	finish := func(fin func()) {
		span.Finish(t.Now())
		t.gets++
		t.getTime += t.Now() - start
		fin()
	}

	issueEager := func() {
		span.SetProto("eager")
		done := sim.NewCompletion(t.rt.K, "get")
		t.rt.M.SendAMCoalescedC(t.c, t.ns.id, rn, hGetReq,
			&getReq{H: a.h, Off: off, Size: size, WantAddr: t.ns.cache != nil, Done: done}, nil, 0, span,
			func() {
				op.subs = append(op.subs, nbSub{done: done, finC: func(fin func()) {
					copy(dst, done.Bytes())
					t.rt.K.Recycle(done)
					finish(fin)
				}})
				then()
			})
	}

	if t.ns.cache != nil {
		t0 := t.Now()
		t.c.Sleep(prof.CacheLookupCost, func() {
			span.Phase(telemetry.PhaseCacheLookup, t0, t.Now())
			if base, ep, hit := t.ns.cache.LookupEpoch(cacheKey(a.h, rn)); hit {
				span.SetProto("rdma")
				t.rt.M.RDMAGetStartC(t.c, t.ns.id, rn, base, base+mem.Addr(off), dst, size, ep, span,
					func(res *sim.Completion) {
						op.subs = append(op.subs, nbSub{done: res, finC: func(fin func()) {
							val := res.Value()
							data := res.Bytes()
							t.rt.K.Recycle(res)
							if nk, nack := val.(transport.Nack); nack {
								// Redo the run over the eager path — we are
								// already inside Sync, so the retire itself
								// carries the continuation.
								if nk.Stale {
									t.healStaleC(rn, nk.Epoch, "get", span, func(cont bool) {
										if !cont {
											finish(fin)
											return
										}
										t.rt.tel.Add("xlupc_get_fallbacks_total", `reason="stale_epoch"`, 1)
										span.SetProto("eager")
										t.eagerGetC(a, rn, off, dst, span, func() { finish(fin) })
									})
									return
								}
								t.ns.cache.Remove(cacheKey(a.h, rn))
								t.rt.tel.Add("xlupc_get_fallbacks_total", `reason="nack"`, 1)
								span.SetProto("eager")
								t.eagerGetC(a, rn, off, dst, span, func() { finish(fin) })
								return
							}
							copy(dst, data)
							finish(fin)
						}})
						then()
					})
				return
			}
			issueEager()
		})
		return
	}
	issueEager()
}

// nbPutRunC is nbPutRun in continuation-passing style.
func (t *Thread) nbPutRunC(op *nbOp, a *SharedArray, idx int64, src []byte, then func()) {
	prof := t.rt.cfg.Profile
	size := len(src)
	rn := a.l.NodeOf(idx)
	start := t.Now()

	if rn == t.ns.id {
		t.localCBC(a, func(cb *svd.ControlBlock) {
			span := t.rt.tel.StartSpan("put", t.id, t.ns.id, start)
			span.SetProto("local")
			span.SetBytes(size)
			t.c.Sleep(prof.ShmLatency+sim.BytesTime(size, prof.ShmByteTime), func() {
				t.ns.tn.Mem.Write(cb.LocalBase+mem.Addr(a.l.ChunkOffset(idx)), src)
				span.Finish(t.Now())
				t.localPuts++
				then()
			})
		})
		return
	}

	if size > prof.EagerMax && prof.SupportsRDMA {
		t.putRunC(a, idx, src, then) // async under the fence, as always
		return
	}

	off := a.l.ChunkOffset(idx)
	span := t.rt.tel.StartSpan("put", t.id, t.ns.id, start)
	span.SetBytes(size)
	done := sim.NewCompletion(t.rt.K, "nb-put")
	finC := func(fin func()) {
		t.rt.K.Recycle(done)
		span.Finish(t.Now())
		t.puts++
		t.putTime += t.Now() - start
		fin()
	}

	issueEager := func() {
		span.SetProto("eager")
		t0 := t.Now()
		t.c.Sleep(sim.BytesTime(size, prof.CopyByteTime), func() {
			span.Phase(telemetry.PhaseCopy, t0, t.Now())
			data := append([]byte(nil), src...)
			t.fence.Add(1)
			t.rt.M.SendAMCoalescedC(t.c, t.ns.id, rn, hPutReq,
				&putReq{H: a.h, Off: off, WantAddr: t.ns.cache != nil, Fence: t.fence, Done: done}, data, 0, span,
				func() {
					op.subs = append(op.subs, nbSub{done: done, finC: finC})
					then()
				})
		})
	}

	if t.ns.cache != nil && t.rt.putCache {
		t0 := t.Now()
		t.c.Sleep(prof.CacheLookupCost, func() {
			span.Phase(telemetry.PhaseCacheLookup, t0, t.Now())
			if base, ep, hit := t.ns.cache.LookupEpoch(cacheKey(a.h, rn)); hit {
				span.SetProto("rdma")
				data := append([]byte(nil), src...)
				t.rt.M.RDMAPutStartC(t.c, t.ns.id, rn, base, base+mem.Addr(off), data, ep, span,
					func(remote *sim.Completion) {
						t.fence.Add(1)
						t.watchPut(remote, a, rn, off, data, span, done)
						op.subs = append(op.subs, nbSub{done: done, finC: finC})
						then()
					})
				return
			}
			issueEager()
		})
		return
	}
	issueEager()
}

// --- Barrier (mirror barrier.go) ---------------------------------------

// BarrierC is Thread.Barrier in continuation-passing style.
func (t *Thread) BarrierC(then func()) {
	t.FenceC(func() {
		span := t.rt.tel.StartSpan("barrier", t.id, t.ns.id, t.Now())
		t.rt.cfg.Trace.Begin(t.id, trace.StateBarrier, t.Now())
		fin := func() {
			t.rt.cfg.Trace.End(t.id, t.Now())
			span.Finish(t.Now())
			then()
		}
		nb := t.ns.barrier
		tpn := t.rt.cfg.ThreadsPerNode()
		t.c.Sleep(localBarrierCost, func() {
			nb.arrived++
			if nb.arrived < tpn {
				if nb.release == nil {
					nb.release = sim.NewCompletion(t.rt.K, "barrier-release")
				}
				nb.release.WaitC(t.c, func(any) { fin() })
				return
			}
			// Last arriver is the representative: run the inter-node phase.
			epoch := nb.epoch
			after := func() {
				rel := nb.release
				nb.release = nil
				nb.arrived = 0
				nb.epoch++
				if rel != nil {
					rel.Complete(nil)
				}
				fin()
			}
			if t.rt.cfg.FlatBarrier {
				nb.flatC(t.c, epoch, after)
			} else {
				nb.disseminateC(t.c, epoch, after)
			}
		})
	})
}

// disseminateC is disseminate in continuation-passing style.
func (nb *nodeBarrier) disseminateC(ct *sim.Cont, epoch int64, then func()) {
	n := nb.rt.cfg.Nodes
	dist := 1
	sim.Loop(func(next func()) {
		if dist >= n {
			then()
			return
		}
		d := dist
		dist *= 2
		partner := (nb.ns.id + d) % n
		nb.rt.M.SendAMSpanC(ct, nb.ns.id, partner, hBarrier,
			&barrierMsg{Epoch: epoch, Round: d}, nil, 0, nil, func() {
				key := dissKey{epoch: epoch, round: d}
				if nb.recv[key] {
					delete(nb.recv, key)
					next()
					return
				}
				c := sim.NewCompletion(nb.rt.K, "barrier-round")
				nb.waiters[key] = c
				c.WaitC(ct, func(any) {
					delete(nb.waiters, key)
					next()
				})
			})
	})
}

// flatC is flat in continuation-passing style.
func (nb *nodeBarrier) flatC(ct *sim.Cont, epoch int64, then func()) {
	n := nb.rt.cfg.Nodes
	if nb.ns.id != 0 {
		nb.rt.M.SendAMSpanC(ct, nb.ns.id, 0, hBarrier,
			&barrierMsg{Epoch: epoch, Round: flatArrive}, nil, 0, nil, func() {
				nb.awaitC(ct, dissKey{epoch: epoch, round: flatRelease}, then)
			})
		return
	}
	// Master: collect n-1 arrivals, then release everyone.
	need := n - 1
	release := func() {
		delete(nb.flatCount, epoch)
		dst := 1
		sim.Loop(func(next func()) {
			if dst >= n {
				then()
				return
			}
			d := dst
			dst++
			nb.rt.M.SendAMSpanC(ct, 0, d, hBarrier,
				&barrierMsg{Epoch: epoch, Round: flatRelease}, nil, 0, nil, next)
		})
	}
	if nb.flatCount[epoch] < need {
		c := sim.NewCompletion(nb.rt.K, "flat-barrier")
		nb.flatWait = c
		nb.flatWaitEpoch = epoch
		nb.flatTarget = need
		c.WaitC(ct, func(any) { release() })
		return
	}
	release()
}

// awaitC is await in continuation-passing style.
func (nb *nodeBarrier) awaitC(ct *sim.Cont, key dissKey, then func()) {
	if nb.recv[key] {
		delete(nb.recv, key)
		then()
		return
	}
	c := sim.NewCompletion(nb.rt.K, "barrier-round")
	nb.waiters[key] = c
	c.WaitC(ct, func(any) {
		delete(nb.waiters, key)
		then()
	})
}

// --- Collective allocation (mirror alloc.go) ---------------------------

// AllAllocC is Thread.AllAlloc in continuation-passing style.
func (t *Thread) AllAllocC(name string, numElems int64, elemSize int, block int64, then func(a *SharedArray)) {
	t.AllAllocKindC(svd.KindArray, name, numElems, elemSize, block, then)
}

// AllAllocKindC is Thread.AllAllocKind in continuation-passing style.
func (t *Thread) AllAllocKindC(kind svd.Kind, name string, numElems int64, elemSize int, block int64, then func(a *SharedArray)) {
	if numElems <= 0 || elemSize <= 0 {
		panic(fmt.Sprintf("core: AllAlloc(%s) with nonpositive size", name))
	}
	span := t.rt.tel.StartSpan("alloc", t.id, t.ns.id, t.Now())
	span.SetProto("collective")
	t.BarrierC(func() {
		ns := t.ns
		closing := func() {
			t.BarrierC(func() {
				a := ns.collective.(*SharedArray)
				span.Finish(t.Now())
				then(a)
			})
		}
		if t.isNodeRep() {
			l := t.rt.layout(elemSize, block, numElems)
			idx := ns.dir.NextIndex(svd.AllPartition)
			h := svd.Handle{Part: svd.AllPartition, Index: idx}
			t.ComputeC(allocCPUCost, func() {
				ns.installArray(h, kind, name, l)
				ns.collective = &SharedArray{rt: t.rt, h: h, l: l, name: name}
				closing()
			})
			return
		}
		closing()
	})
}

// FreeC is Thread.Free in continuation-passing style: fence, broadcast
// the free request, drop the local replica (cache invalidation, unpin,
// allocator free), then wait for every peer's acknowledgement.
func (t *Thread) FreeC(a *SharedArray, then func()) {
	t.FenceC(func() {
		span := t.rt.tel.StartSpan("free", t.id, t.ns.id, t.Now())
		acks := sim.NewCounter(t.rt.K, "free-acks", t.rt.cfg.Nodes-1)
		req := &freeReq{H: a.h, Acks: acks}
		n := 0
		sim.Loop(func(next func()) {
			for n < t.rt.cfg.Nodes && n == t.ns.id {
				n++
			}
			if n == t.rt.cfg.Nodes {
				t.ns.dropObjectC(t.c, a.h, func() {
					acks.WaitC(t.c, func() {
						span.Finish(t.Now())
						then()
					})
				})
				return
			}
			dst := n
			n++
			t.rt.M.SendAMSpanC(t.c, t.ns.id, dst, hFreeReq, req, nil, 0, nil, next)
		})
	})
}

// dropObjectC is nodeState.dropObject in continuation-passing style
// (remote free requests still arrive on proc-based dispatchers and use
// the blocking twin).
func (ns *nodeState) dropObjectC(ct *sim.Cont, h svd.Handle, then func()) {
	afterInval := func() {
		cb, ok := ns.dir.LookupAny(h)
		if !ok {
			panic(fmt.Sprintf("core: node %d freeing unknown object %v", ns.id, h))
		}
		finish := func() {
			ns.dir.MarkFreed(h)
			then()
		}
		if cb.HasLocal {
			cost := ns.tn.Pins.Unpin(cb.LocalBase, ns.rt.K.Now())
			ct.Sleep(cost, func() {
				ns.tn.Mem.Free(cb.LocalBase)
				finish()
			})
			return
		}
		finish()
	}
	if ns.cache != nil {
		n := ns.cache.InvalidateHandle(h.Key())
		ct.Sleep(sim.Time(n)*ns.rt.cfg.Profile.CacheLookupCost, func() {
			ns.rt.recordCacheInval(ns.id, -1, h.Key(), n)
			afterInval()
		})
		return
	}
	afterInval()
}
