package core

import (
	"bytes"
	"fmt"
	"testing"

	"xlupc/internal/sim"
	"xlupc/internal/transport"
)

// coalCfg returns a runtime config with message coalescing enabled.
func coalCfg(threads, nodes int, prof *transport.Profile, cache CacheConfig) Config {
	c := cfg(threads, nodes, prof, cache)
	coal := transport.DefaultCoalConfig()
	c.Coalesce = &coal
	return c
}

// Split-phase GETs must return exactly what the blocking path returns —
// on both transports, with the cache on and off, with and without
// coalescing, across element sizes and batch shapes.
func TestNbGetMatchesBlocking(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		for _, cc := range []CacheConfig{NoCache(), DefaultCache()} {
			for _, coal := range []bool{false, true} {
				name := fmt.Sprintf("%s/cache=%v/coal=%v", prof.Name, cc.Enabled, coal)
				t.Run(name, func(t *testing.T) {
					const threads, nodes, elems = 4, 2, 64
					c := cfg(threads, nodes, prof, cc)
					if coal {
						coalc := transport.DefaultCoalConfig()
						c.Coalesce = &coalc
					}
					mustRun(t, c, func(th *Thread) {
						a := th.AllAlloc("A", elems, 8, 8)
						for i := int64(0); i < elems; i++ {
							if a.Owner(i) == th.ID() {
								th.PutUint64(a.At(i), uint64(i)*31+uint64(th.ID()))
							}
						}
						th.Barrier()
						if th.ID() == 0 {
							want := make([]byte, elems*8)
							th.GetBulk(want, a.At(0))
							// Re-read split-phase, in batches of 8 elements
							// issued back to back before one SyncAll.
							got := make([]byte, elems*8)
							for base := 0; base < elems; base += 8 {
								th.NbGet(got[base*8:(base+8)*8], a.At(int64(base)))
							}
							th.SyncAll()
							if !bytes.Equal(got, want) {
								t.Error("split-phase GETs differ from blocking")
							}
							// Per-handle Sync as well.
							one := make([]byte, 8)
							h := th.NbGet(one, a.At(17))
							th.Sync(h)
							if !bytes.Equal(one, want[17*8:18*8]) {
								t.Error("single NbGet+Sync differs from blocking")
							}
						}
						th.Barrier()
					})
				})
			}
		}
	}
}

// Sync on a PUT handle guarantees target visibility: a remote reader
// released right after the writer's Sync must observe the data.
func TestNbPutSyncVisibility(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		for _, coal := range []bool{false, true} {
			name := fmt.Sprintf("%s/coal=%v", prof.Name, coal)
			t.Run(name, func(t *testing.T) {
				c := cfg(2, 2, prof, DefaultCache())
				if coal {
					coalc := transport.DefaultCoalConfig()
					c.Coalesce = &coalc
				}
				mustRun(t, c, func(th *Thread) {
					a := th.AllAlloc("A", 16, 8, 8) // elements 8.. on node 1
					th.Barrier()
					if th.ID() == 0 {
						src := make([]byte, 4*8)
						for i := range src {
							src[i] = byte(i + 1)
						}
						h := th.NbPut(a.At(10), src)
						th.Sync(h)
						// Visibility proven from the issuing thread without a
						// fence: a remote GET ordered after Sync must see it.
						got := make([]byte, 4*8)
						th.GetBulk(got, a.At(10))
						if !bytes.Equal(got, src) {
							t.Error("data not visible after Sync")
						}
					}
					th.Barrier()
				})
			})
		}
	}
}

// Fence (and barrier, which implies it) retires every outstanding
// split-phase handle: un-synced NbGets must hold valid data after it.
func TestFenceRetiresOutstandingHandles(t *testing.T) {
	mustRun(t, coalCfg(2, 2, transport.GM(), DefaultCache()), func(th *Thread) {
		a := th.AllAlloc("A", 16, 8, 8)
		if a.Owner(12) == th.ID() {
			th.PutUint64(a.At(12), 777)
		}
		th.Barrier()
		if th.ID() == 0 {
			dst := make([]byte, 8)
			th.NbGet(dst, a.At(12)) // never explicitly synced
			th.Fence()
			if got := byteOrder.Uint64(dst); got != 777 {
				t.Errorf("after fence, un-synced NbGet buffer = %d, want 777", got)
			}
			src := make([]byte, 8)
			byteOrder.PutUint64(src, 888)
			th.NbPut(a.At(12), src) // retired by the barrier below
		}
		th.Barrier()
		if got := th.GetUint64(a.At(12)); got != 888 {
			t.Errorf("thread %d: un-synced NbPut invisible after barrier: %d", th.ID(), got)
		}
		th.Barrier()
	})
}

// Zero handles (empty or fully local transfers) and double Sync are
// no-ops; SyncAll with nothing outstanding is free.
func TestSyncEdgeCases(t *testing.T) {
	mustRun(t, cfg(2, 1, transport.GM(), NoCache()), func(th *Thread) {
		a := th.AllAlloc("A", 8, 8, 4)
		th.Barrier()
		if h := th.NbGet(nil, a.At(0)); h.Valid() {
			t.Error("empty NbGet returned a live handle")
		}
		dst := make([]byte, 8)
		h := th.NbGet(dst, a.At(int64(th.ID())*4)) // own element: local
		if h.Valid() {
			t.Error("fully local NbGet returned a live handle")
		}
		th.Sync(h)
		th.Sync(h) // double Sync of a zero handle
		th.SyncAll()
		th.Barrier()
	})
}

// With coalescing off (the default), the blocking paths are untouched:
// a blocking-only workload must take exactly the same virtual time
// whether or not a coalescing config is installed, because blocking
// operations never route through the buffers.
func TestBlockingUnaffectedByCoalesceConfig(t *testing.T) {
	run := func(c Config) sim.Time {
		st := mustRun(t, c, func(th *Thread) {
			a := th.AllAlloc("A", 128, 8, 8)
			th.Barrier()
			for i := 0; i < 30; i++ {
				idx := int64(th.Rand().Intn(128))
				th.GetUint64(a.At(idx))
				th.PutUint64(a.At(idx), uint64(i))
			}
			th.Fence()
			th.Barrier()
		})
		return st.Elapsed
	}
	plain := run(cfg(8, 4, transport.GM(), DefaultCache()))
	withCoal := run(coalCfg(8, 4, transport.GM(), DefaultCache()))
	if plain != withCoal {
		t.Fatalf("coalesce config changed a blocking-only run: %v vs %v", plain, withCoal)
	}
}

// Split-phase runs with coalescing are deterministic, and the coalesce
// counters reflect real batching: several messages per frame, zero when
// the feature is off.
func TestCoalesceStatsAndDeterminism(t *testing.T) {
	run := func(split bool) (sim.Time, RunStats) {
		c := cfg(4, 2, transport.LAPI(), DefaultCache())
		if split {
			coalc := transport.DefaultCoalConfig()
			c.Coalesce = &coalc
		}
		st := mustRun(t, c, func(th *Thread) {
			a := th.AllAlloc("A", 256, 8, 32)
			th.Barrier()
			dst := make([]byte, 8)
			for i := 0; i < 40; i++ {
				idx := int64((th.ID()*67 + i*13) % 256)
				if split {
					th.NbGet(dst, a.At(idx))
					if i%8 == 7 {
						th.SyncAll()
					}
				} else {
					th.GetBulk(dst, a.At(idx)) // blocking baseline
				}
			}
			th.SyncAll()
			th.Barrier()
		})
		return st.Elapsed, st
	}
	tOff, stOff := run(false)
	tOn, stOn := run(true)
	tOn2, _ := run(true)
	if tOn != tOn2 {
		t.Fatalf("coalesced run non-deterministic: %v vs %v", tOn, tOn2)
	}
	if stOff.CoalMsgs != 0 || stOff.CoalFrames != 0 {
		t.Fatalf("coalesce counters nonzero with feature off: %+v", stOff)
	}
	if stOn.CoalMsgs == 0 || stOn.CoalFrames == 0 {
		t.Fatalf("no coalescing recorded: msgs=%d frames=%d", stOn.CoalMsgs, stOn.CoalFrames)
	}
	if stOn.CoalFrames >= stOn.CoalMsgs {
		t.Fatalf("no batching: %d frames for %d messages", stOn.CoalFrames, stOn.CoalMsgs)
	}
	if !(tOn < tOff) {
		t.Fatalf("coalesced split-phase not faster than blocking: on=%v off=%v", tOn, tOff)
	}
}
