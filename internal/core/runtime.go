package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"xlupc/internal/addrcache"
	"xlupc/internal/fault"
	"xlupc/internal/flight"
	"xlupc/internal/mem"
	"xlupc/internal/sim"
	"xlupc/internal/svd"
	"xlupc/internal/telemetry"
	"xlupc/internal/transport"
)

// Active-message handler ids used by the runtime's protocols.
const (
	hGetReq transport.HandlerID = iota + 1
	hGetRep
	hPutReq
	hPutAck
	hRTS // rendezvous request-to-send (GET and PUT variants in meta)
	hRTR // rendezvous ready/reply with remote base address
	hAllocNotify
	hFreeReq
	hFreeAck
	hBarrier
	hLockReq
	hLockGrant
	hUnlockReq
	hColl
	hAtomic
	hAtomicRep
	hLockTry
	hLockTryRep
	hUserReq // user-level AM request (useram.go)
	hUserRep
)

// Runtime is one simulated execution of a UPC program: a kernel, a
// machine, the per-node runtime state, and the UPC threads.
type Runtime struct {
	cfg     Config
	K       *sim.Kernel
	M       *transport.Machine
	tel     *telemetry.Telemetry // nil when telemetry is off
	fr      *flight.Recorder     // nil when the flight recorder is off
	nodes   []*nodeState
	threads []*Thread

	putCache bool // effective PUT-caching decision
	ran      bool

	// userHandlers is the user-level AM dispatch table (useram.go).
	userHandlers [maxUserHandlers]UserHandler

	// runLocal holds run-scoped host-side singletons (see RunLocal).
	runLocal map[string]any

	// Crash orchestration (all zero-valued when cfg.Crash is nil).
	crashTimers      []*sim.Timer // pending scheduled crashes
	liveBodies       int          // program threads still running
	crashErr         error        // first CrashFail abort
	staleInvalidated int64        // cache entries flushed by stale-NACK recovery
}

// nodeState is the per-node runtime state layered over the transport
// node: the SVD replica, the remote address cache, barrier and lock
// bookkeeping.
type nodeState struct {
	rt    *Runtime
	id    int
	tn    *transport.Node
	dir   *svd.Directory
	cache *addrcache.Cache

	barrier *nodeBarrier
	coll    *collState
	locks   map[svd.Handle]*lockHome

	// collective carries the node representative's result (e.g. the
	// freshly allocated array) to the node's other threads across the
	// closing barrier of a collective operation.
	collective any

	// user holds node-scoped singletons of user-level protocols
	// (per-node locks, counters); see nodeLocal in useram.go.
	user map[string]any
}

// NewRuntime builds the simulated cluster for cfg.
func NewRuntime(cfg Config) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	k := sim.NewKernel()
	cfg.Profile = cfg.effectiveProfile()
	m := transport.NewMachine(k, cfg.Profile, cfg.Nodes)
	m.Tel = cfg.Telemetry
	if cfg.Fault != nil || cfg.Rel != nil || cfg.Crash != nil {
		rc := transport.DefaultRelConfig()
		if cfg.Rel != nil {
			rc = *cfg.Rel
		}
		var inj *fault.Injector
		if cfg.Fault != nil {
			inj = fault.New(cfg.Seed, *cfg.Fault)
		}
		m.EnableChaos(inj, rc)
	}
	if cfg.Coalesce != nil {
		m.EnableCoalescing(*cfg.Coalesce)
	}
	rt := &Runtime{cfg: cfg, K: k, M: m, tel: cfg.Telemetry, putCache: cfg.putCacheEnabled()}
	if cfg.Flight != nil {
		rt.fr = flight.New(cfg.Nodes, cfg.Flight.EffPerNode())
		m.SetFlightRecorder(rt.fr)
	}
	rt.nodes = make([]*nodeState, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		ns := &nodeState{
			rt:    rt,
			id:    i,
			tn:    m.Nodes[i],
			dir:   svd.NewDirectory(i, cfg.Threads),
			locks: make(map[svd.Handle]*lockHome),
		}
		// The cache only pays off where one-sided hardware exists; on
		// RDMA-less transports (BlueGene/L, TCP) the runtime leaves it
		// off, exactly as a portable deployment would.
		if cfg.Cache.Enabled && cfg.Profile.SupportsRDMA {
			if cfg.Cache.Adaptive != nil {
				ns.cache = addrcache.NewAdaptive(*cfg.Cache.Adaptive, cfg.Seed+int64(i))
			} else {
				ns.cache = addrcache.New(cfg.Cache.Capacity, cfg.Cache.Policy, cfg.Seed+int64(i))
			}
		}
		ns.barrier = newNodeBarrier(rt, ns)
		ns.coll = newCollState()
		rt.nodes[i] = ns
	}
	rt.registerHandlers()
	rt.scheduleCrashes()
	rt.threads = make([]*Thread, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		rt.threads[t] = newThread(rt, t)
	}
	return rt, nil
}

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Node returns node n's runtime state (test and tooling hook).
func (rt *Runtime) node(n int) *nodeState { return rt.nodes[n] }

// Cache returns node n's remote address cache, nil when caching is off
// — the hook layers above the runtime use to report per-object hit
// rates (addrcache.Cache.KeyStats).
func (rt *Runtime) Cache(n int) *addrcache.Cache { return rt.nodes[n].cache }

// nodeOfThread maps a UPC thread id to its node.
func (rt *Runtime) nodeOfThread(t int) *nodeState {
	return rt.nodes[t/rt.cfg.ThreadsPerNode()]
}

// Run executes body once per UPC thread (SPMD), driving the simulation
// to completion, and returns the run's statistics. The body receives
// the Thread it runs as; thread 0 is the UPC "main" thread by
// convention. Run may be called once per Runtime.
func (rt *Runtime) Run(body func(t *Thread)) (RunStats, error) {
	if rt.ran {
		return RunStats{}, fmt.Errorf("core: Runtime.Run called twice; build a fresh Runtime per run")
	}
	if rt.cfg.Exec != ExecGoroutine {
		return RunStats{}, fmt.Errorf("core: Runtime.Run needs Config.Exec == ExecGoroutine; use RunCont for continuation mode")
	}
	rt.ran = true
	// Whatever way the run ends — clean completion, Stop, an event
	// limit, a deadlock error, or a panic unwinding through Run — the
	// dispatcher daemons (and, on error paths, stranded program threads)
	// are still parked on their goroutines. Release them so repeated
	// simulations (sweeps, benchmarks) do not accumulate goroutines.
	defer rt.K.Shutdown()
	rt.liveBodies = len(rt.threads)
	for _, th := range rt.threads {
		th := th
		rt.K.SpawnIdx("upc", th.id, func(p *sim.Proc) {
			th.p = p
			body(th)
			th.Fence() // drain outstanding PUTs before exiting
			rt.bodyDone()
		})
	}
	return rt.finishRun(rt.K.Run())
}

// bodyDone accounts one finished program thread; the last one cancels
// crash timers scheduled beyond the program's natural end — they would
// advance the clock (inflating the makespan) and mutate state nothing
// will observe.
func (rt *Runtime) bodyDone() {
	rt.liveBodies--
	if rt.liveBodies == 0 {
		rt.cancelCrashTimers()
	}
}

// finishRun is the common epilogue of Run and RunCont: fold in the
// typed transport and crash failures and trigger the flight post-mortem.
func (rt *Runtime) finishRun(err error) (RunStats, error) {
	// A packet that exhausted its retry budget stopped the kernel; the
	// typed failure outranks whatever secondary state Run reported, and
	// the deferred Shutdown unwinds the stranded processes — a clean
	// abort instead of a deadlock. A CrashFail abort outranks both: the
	// stale operation is the root cause of anything downstream.
	if te := rt.M.FatalError(); te != nil {
		err = te
	}
	if rt.crashErr != nil {
		err = rt.crashErr
	}
	if err != nil && rt.cfg.Flight != nil && rt.cfg.Flight.Dump != nil {
		// Best-effort post-mortem: a broken dump sink must not mask the
		// run's real failure.
		_ = rt.WriteFlightDump(rt.cfg.Flight.Dump, err)
	}
	return rt.stats(), err
}

// FlightRecorder returns the run's flight recorder (nil when off).
func (rt *Runtime) FlightRecorder() *flight.Recorder { return rt.fr }

// flightNodes extracts the nodes a failure involves: a TransportError
// names its dead channel's endpoints, a CrashError the crashed target.
// Anything else (a DeadlockError, a checksum divergence, an unknown
// error) implicates every node.
func (rt *Runtime) flightNodes(cause error) []int {
	var te *transport.TransportError
	if errors.As(cause, &te) {
		return []int{te.Src, te.Dst}
	}
	var ce *CrashError
	if errors.As(cause, &ce) {
		return []int{ce.Node}
	}
	return nil // all nodes
}

// WriteFlightDump writes the flight recorder's failure dump for cause
// to w: the last Flight.Tail events of every involved node, as JSONL
// records followed by a '#'-prefixed human-readable tail interleaved by
// virtual time. A nil cause (an on-demand capture) dumps every node.
// No-op when the recorder is off.
func (rt *Runtime) WriteFlightDump(w io.Writer, cause error) error {
	if rt.fr == nil {
		return nil
	}
	if cause != nil {
		if _, err := fmt.Fprintf(w, "# flight dump: %v\n", cause); err != nil {
			return err
		}
	}
	return rt.fr.WriteDump(w, rt.flightNodes(cause), rt.cfg.Flight.EffTail())
}

// recordCacheInval flight-records an address-cache invalidation on node:
// rn is the remote node flushed (-1 for a handle-scoped invalidation on
// free), key the epoch or handle key, n the entries dropped.
func (rt *Runtime) recordCacheInval(node, rn int, key uint64, n int) {
	rt.fr.Record(node, flight.Event{
		T: rt.K.Now(), Kind: flight.KindCacheInval,
		Src: int32(node), Dst: int32(rn), Seq: key, Arg: int64(n),
	})
}

// RunStats aggregates a finished run.
type RunStats struct {
	Elapsed sim.Time // virtual makespan of the program

	// KernelEvents is the number of simulation events the kernel
	// processed — a deterministic function of the run, and the
	// denominator-independent half of the host events/second figure.
	KernelEvents int64

	// Cache behaviour, aggregated over nodes and per node.
	Cache    addrcache.Stats
	CachePer []addrcache.Stats
	CacheLen []int // resident entries per node at exit

	// Traffic.
	Messages int64
	NetBytes int64
	AMOps    int64
	RDMAOps  int64

	// Per-thread operation counters, aggregated.
	Gets, Puts           int64
	LocalGets, LocalPuts int64
	GetTime, PutTime     sim.Time

	// Remote atomics (all zero when no atomic was issued).
	AtomicOps    int64    // remote atomic operations (NIC or AM path)
	LocalAtomics int64    // home-node atomic fast-path operations
	AtomicTime   sim.Time // initiator time blocked in remote atomics

	// Pinned address table usage.
	PinnedPeak   []int    // per node high-water mark of pinned entries
	Pins         int64    // registrations performed, all nodes
	Unpins       int64    // explicit deregistrations
	PinEvictions int64    // limited-pinning evictor deregistrations
	RegTime      sim.Time // virtual time spent registering memory
	DeregTime    sim.Time // virtual time spent deregistering memory
	RDMANacks    int64    // RDMA operations NACKed by a deregistered target

	// Lazy-unpin registration cache and evictor extras (all zero when
	// Pin leaves the default eager-LRU behaviour).
	PinReuses    int64 // re-pins served for free from the dead-list
	PinParked    int64 // lazy unpins that parked instead of deregistering
	PinReclaims  int64 // parked registrations finally deregistered
	PinGhostHits int64 // cost-aware evictor ghost-list recognitions
	PinRepins    int64 // size-mismatched re-pins (dereg + fresh register)

	// Fault injection and reliable delivery (all zero when chaos is off).
	NetDrops      int64 // packets vanished on the wire
	NetCorrupts   int64 // packets delivered corrupted (discarded at the NIC)
	NetDups       int64 // packets delivered twice by the fabric
	NetDelayed    int64 // packets given extra wire latency
	NetStalled    int64 // arrivals held by a NIC-stall window
	Retransmits   int64 // reliable-layer re-injections
	DupSuppressed int64 // replayed packets discarded by target-side dedup
	AcksSent      int64 // reliable-layer acknowledgements

	// Message coalescing (all zero when Coalesce is nil).
	CoalMsgs       int64 // sub-messages that travelled inside a frame
	CoalFrames     int64 // coalesced wire frames flushed
	CoalSavedBytes int64 // header bytes saved versus individual sends

	// Crash/restart fault domain (all zero when Crash is nil).
	Crashes          int64    // nodes taken down
	CrashDrops       int64    // arrivals dropped at a down NIC
	StaleNacks       int64    // RDMA ops NACKed for a stale target epoch
	StaleInvalidated int64    // cache entries flushed by stale-NACK recovery
	ParkedRetx       int64    // retransmits parked against a restart timer
	Recovered        int64    // restarts confirmed by a post-restart RDMA op
	RecoveryTime     sim.Time // sum of restart -> first-successful-op gaps
}

func (rt *Runtime) stats() RunStats {
	st := RunStats{Elapsed: rt.K.Now(), KernelEvents: rt.K.Events()}
	st.Messages = rt.M.Fab.Messages()
	st.NetBytes = rt.M.Fab.Bytes()
	st.AMOps = rt.M.AMCount()
	st.RDMAOps = rt.M.RDMACount()
	for _, ns := range rt.nodes {
		if ns.cache != nil {
			cs := ns.cache.Stats()
			st.CachePer = append(st.CachePer, cs)
			st.CacheLen = append(st.CacheLen, ns.cache.Len())
			st.Cache.Hits += cs.Hits
			st.Cache.Misses += cs.Misses
			st.Cache.Inserts += cs.Inserts
			st.Cache.Evictions += cs.Evictions
			st.Cache.Invalidations += cs.Invalidations
			st.Cache.Resizes += cs.Resizes
		}
		st.PinnedPeak = append(st.PinnedPeak, ns.tn.Pins.MaxLive)
		st.Pins += ns.tn.Pins.Pins
		st.Unpins += ns.tn.Pins.Unpins
		st.PinEvictions += ns.tn.Pins.Evicted
		st.RegTime += ns.tn.Pins.RegTime
		st.DeregTime += ns.tn.Pins.DeregTime
		st.PinReuses += ns.tn.Pins.Reuses
		st.PinParked += ns.tn.Pins.Parked
		st.PinReclaims += ns.tn.Pins.Reclaims
		st.PinGhostHits += ns.tn.Pins.GhostHits
		st.PinRepins += ns.tn.Pins.Repins
	}
	st.RDMANacks = rt.M.NackCount()
	fs := rt.M.Fab.FaultStats()
	st.NetDrops = fs.Drops
	st.NetCorrupts = fs.Corrupts
	st.NetDups = fs.Dups
	st.NetDelayed = fs.Delayed
	st.NetStalled = fs.Stalled
	rs := rt.M.RelStats()
	st.Retransmits = rs.Retransmits
	st.DupSuppressed = rs.DupSuppressed
	st.AcksSent = rs.Acks
	cs := rt.M.CoalStats()
	st.CoalMsgs = cs.Msgs
	st.CoalFrames = cs.Frames
	st.CoalSavedBytes = cs.SavedBytes
	crs := rt.M.CrashStats()
	st.Crashes = crs.Crashes
	st.CrashDrops = fs.CrashDrops
	st.StaleNacks = crs.StaleNacks
	st.StaleInvalidated = rt.staleInvalidated
	st.ParkedRetx = rs.Parked
	st.Recovered = crs.Recovered
	st.RecoveryTime = crs.RecoveryTime
	for _, th := range rt.threads {
		st.Gets += th.gets
		st.Puts += th.puts
		st.LocalGets += th.localGets
		st.LocalPuts += th.localPuts
		st.GetTime += th.getTime
		st.PutTime += th.putTime
		st.AtomicOps += th.atomics
		st.LocalAtomics += th.localAtomics
		st.AtomicTime += th.atomicTime
	}
	rt.syncRegistry(st)
	return st
}

// syncRegistry publishes the run's end-state — cache behaviour, pin
// tables, resource utilization, queue depths, traffic totals — into the
// telemetry registry, so exporters see the whole run without every
// subsystem holding a registry reference during it. No-op when
// telemetry is off.
func (rt *Runtime) syncRegistry(st RunStats) {
	tel := rt.tel
	if tel == nil {
		return
	}
	tel.Set("xlupc_run_elapsed_seconds", "", st.Elapsed.Secs())
	tel.Add("xlupc_net_messages_total", "", st.Messages)
	tel.Add("xlupc_net_bytes_total", "", st.NetBytes)
	tel.Add("xlupc_am_ops_total", "", st.AMOps)
	tel.Add("xlupc_rdma_ops_total", "", st.RDMAOps)
	// Fault and reliability metrics only exist when chaos is configured,
	// keeping exporter output bit-identical to main when it is off.
	if rt.cfg.Fault != nil || rt.cfg.Rel != nil {
		tel.Add("xlupc_fault_drops_total", "", st.NetDrops)
		tel.Add("xlupc_fault_corrupts_total", "", st.NetCorrupts)
		tel.Add("xlupc_fault_dups_total", "", st.NetDups)
		tel.Add("xlupc_fault_delays_total", "", st.NetDelayed)
		tel.Add("xlupc_fault_stalls_total", "", st.NetStalled)
		tel.Add("xlupc_rel_retransmits_total", "", st.Retransmits)
		tel.Add("xlupc_rel_dup_suppressed_total", "", st.DupSuppressed)
		tel.Add("xlupc_rel_acks_total", "", st.AcksSent)
	}
	// Crash metrics likewise only exist when a crash schedule is
	// configured, so exporter output with Crash nil stays identical.
	if rt.cfg.Crash != nil {
		tel.Add("xlupc_crash_nodes_total", "", st.Crashes)
		tel.Add("xlupc_crash_drops_total", "", st.CrashDrops)
		tel.Add("xlupc_crash_stale_nacks_total", "", st.StaleNacks)
		tel.Add("xlupc_crash_stale_invalidated_total", "", st.StaleInvalidated)
		tel.Add("xlupc_crash_parked_retx_total", "", st.ParkedRetx)
		tel.Add("xlupc_crash_recovered_total", "", st.Recovered)
		tel.Set("xlupc_crash_recovery_seconds", "", st.RecoveryTime.Secs())
	}
	// Lazy-unpin and evictor extras only exist when the Pin config opts
	// into them, so exporter output for default-policy runs stays
	// identical.
	if rt.cfg.Pin != nil && (rt.cfg.Pin.Lazy != nil || rt.cfg.Pin.Evictor != mem.EvictLRU) {
		tel.Add("xlupc_pin_reuses_total", "", st.PinReuses)
		tel.Add("xlupc_pin_parked_total", "", st.PinParked)
		tel.Add("xlupc_pin_reclaims_total", "", st.PinReclaims)
		tel.Add("xlupc_pin_ghost_hits_total", "", st.PinGhostHits)
		tel.Add("xlupc_pin_repins_total", "", st.PinRepins)
	}
	// Adaptive cache re-apportionments likewise appear only when the
	// cache runs in adaptive mode.
	if rt.cfg.Cache.Adaptive != nil {
		tel.Add("xlupc_addrcache_resizes_total", "", st.Cache.Resizes)
	}
	// Atomic aggregates likewise only exist once an atomic was issued
	// (the per-op xlupc_atomic_ops_total counters appear at issue time),
	// so exporter output for atomic-free runs stays identical.
	if st.AtomicOps+st.LocalAtomics > 0 {
		tel.Add("xlupc_atomic_remote_total", "", st.AtomicOps)
		tel.Add("xlupc_atomic_local_total", "", st.LocalAtomics)
		tel.Set("xlupc_atomic_blocked_seconds", "", st.AtomicTime.Secs())
	}
	for _, ns := range rt.nodes {
		node := `node="` + strconv.Itoa(ns.id) + `"`
		if ns.cache != nil {
			cs := ns.cache.Stats()
			tel.Add("xlupc_addrcache_hits_total", node, cs.Hits)
			tel.Add("xlupc_addrcache_misses_total", node, cs.Misses)
			tel.Add("xlupc_addrcache_inserts_total", node, cs.Inserts)
			tel.Add("xlupc_addrcache_evictions_total", node, cs.Evictions)
			tel.Add("xlupc_addrcache_invalidations_total", node, cs.Invalidations)
			tel.Set("xlupc_addrcache_hit_rate", node, cs.HitRate())
			tel.Set("xlupc_addrcache_entries", node, float64(ns.cache.Len()))
		}
		pins := ns.tn.Pins
		tel.Add("xlupc_pin_registrations_total", node, pins.Pins)
		tel.Add("xlupc_pin_deregistrations_total", node, pins.Unpins)
		tel.Add("xlupc_pin_evictions_total", node, pins.Evicted)
		tel.Set("xlupc_pin_peak_entries", node, float64(pins.MaxLive))
		tel.Set("xlupc_pin_reg_seconds", node, pins.RegTime.Secs())
		tel.Set("xlupc_pin_dereg_seconds", node, pins.DeregTime.Secs())
		// Resource utilization: the CPU pool, the AM-handler resource
		// (the CPU itself on non-overlapping transports) and the NIC
		// injection port. Busy and queue-wait integrals answer "which
		// engine was the bottleneck".
		resources := []*sim.Resource{ns.tn.CPU, rt.M.Fab.Port(ns.id).TX}
		if ns.tn.Comm != ns.tn.CPU {
			resources = append(resources, ns.tn.Comm)
		}
		for _, r := range resources {
			labels := node + `,resource="` + r.Name() + `"`
			rs := r.Stats()
			tel.Add("xlupc_resource_acquires_total", labels, rs.Acquires)
			tel.Set("xlupc_resource_busy_seconds", labels, rs.BusyTime.Secs())
			tel.Set("xlupc_resource_wait_seconds", labels, rs.TotalWait.Secs())
		}
		port := rt.M.Fab.Port(ns.id)
		for _, q := range []struct {
			name string
			p    int64
			m    int
		}{
			{"am", port.AM.Pushes(), port.AM.MaxLen()},
			{"dma", port.DMA.Pushes(), port.DMA.MaxLen()},
		} {
			labels := node + `,queue="` + q.name + `"`
			tel.Add("xlupc_queue_pushes_total", labels, q.p)
			tel.Set("xlupc_queue_max_depth", labels, float64(q.m))
		}
	}
}

func (rt *Runtime) registerHandlers() {
	rt.M.Handle(hGetReq, rt.handleGetReq)
	rt.M.Handle(hGetRep, rt.handleGetRep)
	rt.M.Handle(hPutReq, rt.handlePutReq)
	rt.M.Handle(hPutAck, rt.handlePutAck)
	rt.M.Handle(hRTS, rt.handleRTS)
	rt.M.Handle(hRTR, rt.handleRTR)
	rt.M.Handle(hAllocNotify, rt.handleAllocNotify)
	rt.M.Handle(hFreeReq, rt.handleFreeReq)
	rt.M.Handle(hFreeAck, rt.handleFreeAck)
	rt.M.Handle(hBarrier, rt.handleBarrier)
	rt.M.Handle(hLockReq, rt.handleLockReq)
	rt.M.Handle(hLockGrant, rt.handleLockGrant)
	rt.M.Handle(hUnlockReq, rt.handleUnlockReq)
	rt.M.Handle(hColl, rt.handleColl)
	rt.M.Handle(hAtomic, rt.handleAtomic)
	rt.M.Handle(hAtomicRep, rt.handleAtomicRep)
	rt.M.Handle(hLockTry, rt.handleLockTry)
	rt.M.Handle(hLockTryRep, rt.handleLockTryRep)
	rt.M.Handle(hUserReq, rt.handleUserReq)
	rt.M.Handle(hUserRep, rt.handleUserRep)
}

// RunLocal returns the run-scoped host-side singleton under key,
// building it on first use — shared pre-computation (e.g. a partition
// of a key space) that every thread would otherwise redo. Host-side
// only: building costs no virtual time, so anything with simulated
// cost belongs in the threads, not here. Race-free by construction:
// the kernel runs one process at a time.
func (rt *Runtime) RunLocal(key string, build func() any) any {
	if rt.runLocal == nil {
		rt.runLocal = make(map[string]any)
	}
	v, ok := rt.runLocal[key]
	if !ok {
		v = build()
		rt.runLocal[key] = v
	}
	return v
}

// resolve looks a handle up in node ns's SVD replica from within an AM
// handler. If the handle is not yet known (its allocation notification
// is still in flight), the message is requeued after a short delay
// rather than blocking the dispatcher; the caller must return
// immediately when resolve reports requeued=true.
func (ns *nodeState) resolve(p *sim.Proc, h svd.Handle, msg *transport.Msg) (cb *svd.ControlBlock, requeued bool) {
	p.Sleep(ns.rt.cfg.Profile.SVDLookupCost)
	cb, ok := ns.dir.LookupAny(h)
	if !ok { // unknown: retry once the notification lands
		port := ns.rt.M.Fab.Port(ns.id)
		msg.Retain() // redelivered below; the dispatcher must not recycle it
		ns.rt.K.After(200*sim.Ns, func() { port.AM.Push(msg) })
		return nil, true
	}
	if cb.Freed {
		panic(fmt.Sprintf("core: node %d: remote access to freed object %v (%s)", ns.id, h, cb.Name))
	}
	return cb, false
}
