package core

import (
	"testing"
	"testing/quick"
)

func TestLayoutOwnerBlockCyclic(t *testing.T) {
	// 4 threads, block 3, 2 threads/node.
	l := NewLayout(4, 2, 8, 3, 24)
	wantOwner := []int{0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3, 0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3}
	for i, w := range wantOwner {
		if got := l.Owner(int64(i)); got != w {
			t.Fatalf("Owner(%d) = %d, want %d", i, got, w)
		}
		if got := l.NodeOf(int64(i)); got != w/2 {
			t.Fatalf("NodeOf(%d) = %d, want %d", i, got, w/2)
		}
	}
}

func TestLayoutPhase(t *testing.T) {
	l := NewLayout(4, 2, 8, 3, 24)
	for i := int64(0); i < 24; i++ {
		if l.Phase(i) != i%3 {
			t.Fatalf("Phase(%d) = %d", i, l.Phase(i))
		}
	}
}

func TestLayoutChunkOffsets(t *testing.T) {
	// 2 threads on 1 node (pure SMP): chunk holds both regions.
	l := NewLayout(2, 2, 4, 2, 8)
	// blocksPerThread = ceil(8/(2*2)) = 2; region = 2*2*4 = 16 bytes.
	if l.ThreadRegionBytes() != 16 {
		t.Fatalf("region = %d", l.ThreadRegionBytes())
	}
	if l.NodeChunkBytes(0) != 32 {
		t.Fatalf("chunk = %d", l.NodeChunkBytes(0))
	}
	// Elements 0,1 → thread 0 block 0 → offsets 0,4.
	// Elements 2,3 → thread 1 block 0 → offsets 16,20.
	// Elements 4,5 → thread 0 block 1 → offsets 8,12.
	want := []int64{0, 4, 16, 20, 8, 12, 24, 28}
	for i, w := range want {
		if got := l.ChunkOffset(int64(i)); got != w {
			t.Fatalf("ChunkOffset(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestLayoutIndefiniteBlock(t *testing.T) {
	l := NewLayout(4, 2, 8, 0, 100) // indefinite: all on thread 0
	for _, i := range []int64{0, 50, 99} {
		if l.Owner(i) != 0 {
			t.Fatalf("Owner(%d) = %d", i, l.Owner(i))
		}
	}
	// Uniform regions: every resident thread reserves one worst-case
	// region (2 threads/node × 100 elements × 8 bytes) even though
	// only thread 0 holds data — the documented space/simplicity
	// trade of the chunk scheme.
	if l.NodeChunkBytes(0) != 1600 {
		t.Fatalf("node 0 chunk = %d", l.NodeChunkBytes(0))
	}
	if l.ContigRun(0) != 100 {
		t.Fatalf("contig run = %d", l.ContigRun(0))
	}
}

func TestLayoutHome(t *testing.T) {
	l := NewLayout(4, 2, 8, 10, 100)
	l.Home = 3
	if l.Owner(57) != 3 || l.NodeOf(57) != 1 {
		t.Fatalf("home owner/node wrong: %d/%d", l.Owner(57), l.NodeOf(57))
	}
	if l.NodeChunkBytes(1) != 800 || l.NodeChunkBytes(0) != 0 {
		t.Fatalf("home chunks wrong: %d/%d", l.NodeChunkBytes(1), l.NodeChunkBytes(0))
	}
	if l.ChunkOffset(13) != 13*8 {
		t.Fatalf("home offset = %d", l.ChunkOffset(13))
	}
	if l.ContigRun(40) != 60 {
		t.Fatalf("home contig run = %d", l.ContigRun(40))
	}
}

func TestLayoutContigRun(t *testing.T) {
	l := NewLayout(4, 2, 8, 5, 43)
	if l.ContigRun(0) != 5 || l.ContigRun(3) != 2 || l.ContigRun(4) != 1 {
		t.Fatal("contig runs within block wrong")
	}
	// Tail: last block may be partial (elements 40..42, block 8, thread 0).
	if l.ContigRun(41) != 2 {
		t.Fatalf("tail run = %d", l.ContigRun(41))
	}
	// Single thread: the entire remainder is one run.
	l1 := NewLayout(1, 1, 8, 5, 43)
	if l1.ContigRun(7) != 36 {
		t.Fatalf("single-thread run = %d", l1.ContigRun(7))
	}
}

// Property: offsets are unique within a node, in range, and every
// element maps to the node that owns its thread.
func TestPropertyLayoutBijective(t *testing.T) {
	f := func(th8, tpn8, blk16 uint8, n16 uint16) bool {
		threads := int(th8%16) + 1
		tpn := int(tpn8%8) + 1
		for threads%tpn != 0 {
			tpn-- // force divisibility
		}
		block := int64(blk16%32) + 1
		n := int64(n16%2000) + 1
		l := NewLayout(threads, tpn, 8, block, n)
		seen := make(map[[2]int64]bool)
		for i := int64(0); i < n; i++ {
			node := int64(l.NodeOf(i))
			off := l.ChunkOffset(i)
			if off < 0 || off+int64(l.ElemSize) > l.NodeChunkBytes(int(node)) {
				return false
			}
			if off%int64(l.ElemSize) != 0 {
				return false
			}
			k := [2]int64{node, off}
			if seen[k] {
				return false
			}
			seen[k] = true
			if l.Owner(i)/tpn != int(node) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: ContigRun never crosses an affinity or contiguity break —
// all elements of a run share the owner and have consecutive offsets.
func TestPropertyContigRunSound(t *testing.T) {
	f := func(th8, blk16 uint8, n16 uint16) bool {
		threads := int(th8%8) + 1
		block := int64(blk16%16) + 1
		n := int64(n16%500) + 1
		l := NewLayout(threads, 1, 4, block, n)
		for i := int64(0); i < n; {
			run := l.ContigRun(i)
			if run < 1 || i+run > n {
				return false
			}
			owner := l.Owner(i)
			base := l.ChunkOffset(i)
			for j := int64(0); j < run; j++ {
				if l.Owner(i+j) != owner {
					return false
				}
				if l.ChunkOffset(i+j) != base+j*int64(l.ElemSize) {
					return false
				}
			}
			i += run
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// FuzzLayoutChunkOffset hardens the layout arithmetic against
// arbitrary shapes: any in-range element must land inside its node's
// chunk, aligned to the element size. Run with `go test -fuzz
// FuzzLayoutChunkOffset ./internal/core` for exploration; the seed
// corpus runs under plain `go test`.
func FuzzLayoutChunkOffset(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint8(3), uint16(100), uint16(17))
	f.Add(uint8(1), uint8(1), uint8(1), uint16(1), uint16(0))
	f.Add(uint8(16), uint8(4), uint8(32), uint16(5000), uint16(4999))
	f.Fuzz(func(t *testing.T, th, tpn, blk uint8, n, idx uint16) {
		threads := int(th%32) + 1
		perNode := int(tpn%8) + 1
		for threads%perNode != 0 {
			perNode--
		}
		block := int64(blk%64) + 1
		elems := int64(n%8192) + 1
		i := int64(idx) % elems
		l := NewLayout(threads, perNode, 8, block, elems)
		owner := l.Owner(i)
		if owner < 0 || owner >= threads {
			t.Fatalf("owner %d out of range", owner)
		}
		node := l.NodeOf(i)
		off := l.ChunkOffset(i)
		if off < 0 || off+8 > l.NodeChunkBytes(node) {
			t.Fatalf("offset %d outside chunk %d (i=%d)", off, l.NodeChunkBytes(node), i)
		}
		if off%8 != 0 {
			t.Fatalf("offset %d misaligned", off)
		}
		run := l.ContigRun(i)
		if run < 1 || i+run > elems {
			t.Fatalf("run %d invalid at %d", run, i)
		}
	})
}
