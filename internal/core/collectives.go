package core

import (
	"fmt"
	"math"

	"xlupc/internal/sim"
	"xlupc/internal/transport"
)

// Collectives use the same hierarchical shape as the barrier: threads
// combine intra-node in shared memory, node representatives run a
// binomial tree across nodes (log2(n) rounds of active messages), and
// the representative releases its co-located threads with the result.
// Like all UPC collectives, every thread must call them in the same
// order with compatible arguments.

// ReduceOp selects the combining operator of a reduction.
type ReduceOp int

const (
	ReduceSum ReduceOp = iota
	ReduceMin
	ReduceMax
	ReduceXor
	// ReduceFSum sums float64 values carried as their IEEE-754 bits
	// (the runtime's reductions move raw 8-byte words).
	ReduceFSum
)

func (op ReduceOp) String() string {
	switch op {
	case ReduceSum:
		return "sum"
	case ReduceMin:
		return "min"
	case ReduceMax:
		return "max"
	case ReduceXor:
		return "xor"
	case ReduceFSum:
		return "fsum"
	}
	return fmt.Sprintf("op(%d)", int(op))
}

func (op ReduceOp) apply(a, b uint64) uint64 {
	switch op {
	case ReduceMin:
		if b < a {
			return b
		}
		return a
	case ReduceMax:
		if b > a {
			return b
		}
		return a
	case ReduceXor:
		return a ^ b
	case ReduceFSum:
		return math.Float64bits(math.Float64frombits(a) + math.Float64frombits(b))
	default:
		return a + b
	}
}

// collCPUCost models the local combine work per collective step.
const collCPUCost = 150 * sim.Ns

// collState is a node's collective bookkeeping.
type collState struct {
	epoch   int64
	arrived int
	acc     uint64
	op      ReduceOp
	data    []byte
	parts   [][]byte // per-thread-slot staging for scatter/gather
	release *sim.Completion

	// Inter-node buffering, keyed by (epoch, sender's relative rank).
	recv    map[collKey]*collMsg
	waiters map[collKey]*sim.Completion
}

type collKey struct {
	epoch int64
	from  int
}

// collMsg is the inter-node collective payload.
type collMsg struct {
	Epoch int64
	From  int // sender's relative rank in the current tree
	Value uint64
	Data  []byte
}

func newCollState() *collState {
	return &collState{
		recv:    make(map[collKey]*collMsg),
		waiters: make(map[collKey]*sim.Completion),
	}
}

// awaitColl blocks until the message for key arrives (it may already
// have been buffered).
func (cs *collState) awaitColl(p *sim.Proc, k *sim.Kernel, key collKey) *collMsg {
	if m, ok := cs.recv[key]; ok {
		delete(cs.recv, key)
		return m
	}
	c := sim.NewCompletion(k, fmt.Sprintf("coll e%d from %d", key.epoch, key.from))
	cs.waiters[key] = c
	var p2 *sim.Proc = p
	p2.Wait(c)
	delete(cs.waiters, key)
	return c.Value().(*collMsg)
}

func (rt *Runtime) handleColl(p *sim.Proc, n *transport.Node, msg *transport.Msg) {
	cs := rt.nodes[n.ID].coll
	m := msg.Meta.(*collMsg)
	key := collKey{epoch: m.Epoch, from: m.From}
	if c, ok := cs.waiters[key]; ok {
		c.Complete(m)
		return
	}
	cs.recv[key] = m
}

// sendColl ships a collective message to another node.
func (rt *Runtime) sendColl(p *sim.Proc, src, dst int, m *collMsg) {
	rt.M.SendAM(p, src, dst, hColl, m, m.Data, 8)
}

// enterColl performs the intra-node arrival phase. The representative
// (the last arriver) gets rep=true and must run the inter-node phase,
// then call releaseColl with the result; the other threads block and
// receive that result through the returned completion.
func (t *Thread) enterColl(contribute func(cs *collState)) (rep bool, cs *collState, release *sim.Completion) {
	cs = t.ns.coll
	t.p.Sleep(collCPUCost)
	contribute(cs)
	cs.arrived++
	if cs.arrived < t.rt.cfg.ThreadsPerNode() {
		if cs.release == nil {
			cs.release = sim.NewCompletion(t.rt.K, fmt.Sprintf("coll-release n%d", t.ns.id))
		}
		release = cs.release
		t.p.Wait(release)
		return false, cs, release
	}
	return true, cs, nil
}

// releaseColl wakes the node's other threads, handing them the result
// through the completion (the representative may immediately enter the
// next collective, so waiters must not read shared state).
func (t *Thread) releaseColl(cs *collState, result any) {
	rel := cs.release
	cs.release = nil
	cs.arrived = 0
	cs.epoch++
	if rel != nil {
		rel.Complete(result)
	}
}

// AllReduceU64 reduces one uint64 per thread with op and returns the
// result on every thread (upc_all_reduce with UPC_IN_ALLSYNC |
// UPC_OUT_ALLSYNC semantics).
func (t *Thread) AllReduceU64(v uint64, op ReduceOp) uint64 {
	t.Fence()
	rep, cs, release := t.enterColl(func(cs *collState) {
		if cs.arrived == 0 {
			cs.acc, cs.op = v, op
		} else {
			cs.acc = op.apply(cs.acc, v)
		}
	})
	if !rep {
		return release.Value().(uint64)
	}
	n := t.rt.cfg.Nodes
	epoch := cs.epoch
	rel := t.ns.id // tree rooted at node 0: relative rank == node id
	acc := cs.acc
	// Binomial reduce toward relative rank 0.
	for mask := 1; mask < n; mask <<= 1 {
		if rel&mask == 0 {
			src := rel + mask
			if src < n {
				m := cs.awaitColl(t.p, t.rt.K, collKey{epoch: epoch, from: src})
				t.p.Sleep(collCPUCost)
				acc = cs.op.apply(acc, m.Value)
			}
		} else {
			t.rt.sendColl(t.p, t.ns.id, rel-mask, &collMsg{Epoch: epoch, From: rel, Value: acc})
			break
		}
	}
	// Binomial broadcast of the result back down the tree.
	acc = t.bcastTree(cs, epoch, 0, acc, nil).Value
	t.releaseColl(cs, acc)
	return acc
}

// bcastTree runs a binomial broadcast among node representatives for
// the given epoch, rooted at rootNode. Non-root nodes receive the
// payload; every node forwards to its subtree. It returns the payload.
func (t *Thread) bcastTree(cs *collState, epoch int64, rootNode int, value uint64, data []byte) *collMsg {
	n := t.rt.cfg.Nodes
	rel := (t.ns.id - rootNode + n) % n
	out := &collMsg{Epoch: epoch, Value: value, Data: data}
	mask := 1
	if rel != 0 {
		for mask < n {
			if rel&mask != 0 {
				// Receive from the parent (tagged with n+parent so the
				// downward wave cannot collide with an upward reduce
				// in the same epoch).
				m := cs.awaitColl(t.p, t.rt.K, collKey{epoch: epoch, from: n + (rel - mask)})
				out.Value, out.Data = m.Value, m.Data
				break
			}
			mask <<= 1
		}
	} else {
		for mask < n {
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		dst := rel + mask
		if dst < n {
			t.rt.sendColl(t.p, t.ns.id, (dst+rootNode)%n,
				&collMsg{Epoch: epoch, From: n + rel, Value: out.Value, Data: out.Data})
		}
	}
	return out
}

// AllReduceF64 sums one float64 per thread and returns the total on
// every thread. The reduction order is deterministic (slot order
// within nodes, tree order across them), so results are bitwise
// reproducible run to run.
func (t *Thread) AllReduceF64(v float64) float64 {
	return math.Float64frombits(t.AllReduceU64(math.Float64bits(v), ReduceFSum))
}

// Broadcast distributes root's data to every thread (upc_all_broadcast
// shape, staged through node representatives). Non-root threads pass
// nil; every thread returns its own copy.
func (t *Thread) Broadcast(root int, data []byte) []byte {
	t.Fence()
	rootNode := t.rt.nodeOfThread(root).id
	rep, cs, release := t.enterColl(func(cs *collState) {
		if t.id == root {
			cs.data = append([]byte(nil), data...)
		}
	})
	var out []byte
	if rep {
		m := t.bcastTree(cs, cs.epoch, rootNode, 0, cs.data)
		out = m.Data
		cs.data = nil
		t.releaseColl(cs, out)
	} else {
		out = release.Value().([]byte)
	}
	// Each thread takes a private copy (intra-node shared-memory copy).
	t.p.Sleep(sim.BytesTime(len(out), t.rt.cfg.Profile.ShmByteTime))
	return append([]byte(nil), out...)
}

// Message tag spaces for the point-to-point collective waves (the
// binomial trees use [0,n) upward and [n,2n) downward).
func scatterTag(n, rel int) int { return 2*n + rel }
func gatherTag(n, rel int) int  { return 3*n + rel }

// Scatter splits root's data into Threads equal chunks and hands each
// thread its own (upc_all_scatter shape). len(data) must divide by the
// thread count; non-root threads pass nil.
func (t *Thread) Scatter(root int, data []byte) []byte {
	t.Fence()
	n := t.rt.cfg.Nodes
	tpn := t.rt.cfg.ThreadsPerNode()
	rootNode := t.rt.nodeOfThread(root).id
	if t.id == root && len(data)%t.Threads() != 0 {
		panic(fmt.Sprintf("core: Scatter of %d bytes does not divide among %d threads", len(data), t.Threads()))
	}
	rep, cs, release := t.enterColl(func(cs *collState) {
		if t.id == root {
			cs.data = append([]byte(nil), data...)
		}
	})
	var nodeSlice []byte
	if rep {
		epoch := cs.epoch
		if t.ns.id == rootNode {
			all := cs.data
			cs.data = nil
			chunk := len(all) / t.rt.cfg.Threads
			for dst := 0; dst < n; dst++ {
				lo := dst * tpn * chunk
				hi := lo + tpn*chunk
				if dst == t.ns.id {
					nodeSlice = all[lo:hi]
					continue
				}
				rel := (dst - rootNode + n) % n
				t.rt.sendColl(t.p, t.ns.id, dst,
					&collMsg{Epoch: epoch, From: scatterTag(n, rel), Data: all[lo:hi]})
			}
		} else {
			rel := (t.ns.id - rootNode + n) % n
			m := cs.awaitColl(t.p, t.rt.K, collKey{epoch: epoch, from: scatterTag(n, rel)})
			nodeSlice = m.Data
		}
		t.releaseColl(cs, nodeSlice)
	} else {
		nodeSlice = release.Value().([]byte)
	}
	chunk := len(nodeSlice) / tpn
	slot := t.id % tpn
	t.p.Sleep(sim.BytesTime(chunk, t.rt.cfg.Profile.ShmByteTime))
	return append([]byte(nil), nodeSlice[slot*chunk:(slot+1)*chunk]...)
}

// Gather collects one equal-sized chunk from every thread at root
// (upc_all_gather shape): root receives the concatenation in thread
// order; everyone else receives nil.
func (t *Thread) Gather(root int, chunk []byte) []byte {
	t.Fence()
	n := t.rt.cfg.Nodes
	tpn := t.rt.cfg.ThreadsPerNode()
	rootNode := t.rt.nodeOfThread(root).id
	rep, cs, release := t.enterColl(func(cs *collState) {
		if cs.parts == nil {
			cs.parts = make([][]byte, tpn)
		}
		cs.parts[t.id%tpn] = append([]byte(nil), chunk...)
	})
	var all []byte
	if rep {
		epoch := cs.epoch
		var nodeBlob []byte
		for _, p := range cs.parts {
			nodeBlob = append(nodeBlob, p...)
		}
		cs.parts = nil
		if t.ns.id == rootNode {
			blobs := make([][]byte, n)
			blobs[t.ns.id] = nodeBlob
			for src := 0; src < n; src++ {
				if src == t.ns.id {
					continue
				}
				rel := (src - rootNode + n) % n
				m := cs.awaitColl(t.p, t.rt.K, collKey{epoch: epoch, from: gatherTag(n, rel)})
				blobs[src] = m.Data
			}
			for _, b := range blobs {
				all = append(all, b...)
			}
		} else {
			rel := (t.ns.id - rootNode + n) % n
			t.rt.sendColl(t.p, t.ns.id, rootNode,
				&collMsg{Epoch: epoch, From: gatherTag(n, rel), Data: nodeBlob})
		}
		t.releaseColl(cs, all)
	} else {
		if v := release.Value(); v != nil {
			all = v.([]byte)
		}
	}
	if t.id != root {
		return nil
	}
	t.p.Sleep(sim.BytesTime(len(all), t.rt.cfg.Profile.ShmByteTime))
	return all
}
