package core

import (
	"fmt"
	"testing"

	"xlupc/internal/mem"
	"xlupc/internal/transport"
)

// Under the limited-pinning policy with a registration budget smaller
// than the working set, regions are deregistered behind the caches'
// backs; the NACK/fallback protocol must keep every access correct.
func TestPinLimitedIntegrityUnderEviction(t *testing.T) {
	const threads, nodes, arrays, elems = 8, 4, 6, 64
	c := cfg(threads, nodes, transport.GM(), DefaultCache())
	// Budget fits roughly two chunks per node, forcing constant
	// eviction churn across the six arrays.
	chunk := NewLayout(threads, threads/nodes, 8, elems/threads, elems).NodeChunkBytes(0)
	c.Pin = &PinConfig{Policy: mem.PinLimited, MaxTotal: int(2*chunk) + 1}

	mustRun(t, c, func(th *Thread) {
		var as []*SharedArray
		for i := 0; i < arrays; i++ {
			a := th.AllAlloc(fmt.Sprintf("A%d", i), elems, 8, elems/threads)
			for j := int64(0); j < elems; j++ {
				if a.Owner(j) == th.ID() {
					th.PutUint64(a.At(j), uint64(i*1000+int(j)))
				}
			}
			as = append(as, a)
		}
		th.Barrier()
		// Rotate reads across all arrays several times so cached base
		// addresses go stale repeatedly.
		for round := 0; round < 3; round++ {
			for i, a := range as {
				for j := int64(0); j < elems; j += 7 {
					want := uint64(i*1000 + int(j))
					if got := th.GetUint64(a.At(j)); got != want {
						t.Errorf("round %d: A%d[%d] = %d, want %d", round, i, j, got, want)
					}
				}
			}
		}
		th.Barrier()
	})
}

func TestPinLimitedActuallyEvictsAndRecovers(t *testing.T) {
	const threads, nodes, arrays, elems = 4, 2, 4, 32
	c := cfg(threads, nodes, transport.GM(), DefaultCache())
	chunk := NewLayout(threads, threads/nodes, 8, elems/threads, elems).NodeChunkBytes(0)
	c.Pin = &PinConfig{Policy: mem.PinLimited, MaxTotal: int(chunk) + 1} // one chunk at a time
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		var as []*SharedArray
		for i := 0; i < arrays; i++ {
			a := th.AllAlloc(fmt.Sprintf("A%d", i), elems, 8, elems/threads)
			// Element 17 lives in block 2 → thread 2 → node 1: remote
			// for the thread-0 reader below.
			if a.Owner(17) == th.ID() {
				th.PutUint64(a.At(17), uint64(100+i))
			}
			as = append(as, a)
		}
		th.Barrier()
		if th.ID() == 0 {
			for round := 0; round < 3; round++ {
				for i, a := range as {
					if got := th.GetUint64(a.At(17)); got != uint64(100+i) {
						t.Errorf("A%d[17] = %d", i, got)
					}
				}
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	evicted := int64(0)
	for _, nd := range rt.M.Nodes {
		evicted += nd.Pins.Evicted
	}
	if evicted == 0 {
		t.Fatal("no evictions occurred; the test exercised nothing")
	}
}

// NACKed RDMA PUTs must retry over the AM path and still satisfy the
// fence: data lands before the barrier completes.
func TestPinLimitedPutNackRetries(t *testing.T) {
	const threads, nodes, arrays, elems = 4, 2, 4, 32
	c := cfg(threads, nodes, transport.GM(), DefaultCache())
	c.Cache.PutMode = PutCacheOn
	chunk := NewLayout(threads, threads/nodes, 8, elems/threads, elems).NodeChunkBytes(0)
	c.Pin = &PinConfig{Policy: mem.PinLimited, MaxTotal: int(chunk) + 1}
	mustRun(t, c, func(th *Thread) {
		var as []*SharedArray
		for i := 0; i < arrays; i++ {
			as = append(as, th.AllAlloc(fmt.Sprintf("A%d", i), elems, 8, elems/threads))
		}
		th.Barrier()
		if th.ID() == 0 {
			// Populate the cache for every array (round 1), then PUT
			// through stale entries (round 2): most registrations have
			// been evicted by later arrays, forcing NACK retries.
			// Element 17 is remote for thread 0 (block 2 → node 1).
			for _, a := range as {
				th.GetUint64(a.At(17))
			}
			for i, a := range as {
				th.PutUint64(a.At(17), uint64(7000+i))
			}
		}
		th.Barrier() // fence inside must cover the retried PUTs
		if th.ID() == 0 {
			for i, a := range as {
				if got := th.GetUint64(a.At(17)); got != uint64(7000+i) {
					t.Errorf("A%d[17] = %d after NACK retry", i, got)
				}
			}
		}
		th.Barrier()
	})
}

// The GET-side mirror of the PUT NACK test: cached GETs through stale
// entries must be NACKed by the deregistered target, invalidate the
// stale cache entry, fall back to the AM path, and still return the
// right data.
func TestPinLimitedGetNackFallsBack(t *testing.T) {
	const threads, nodes, arrays, elems = 4, 2, 4, 32
	c := cfg(threads, nodes, transport.GM(), DefaultCache())
	chunk := NewLayout(threads, threads/nodes, 8, elems/threads, elems).NodeChunkBytes(0)
	c.Pin = &PinConfig{Policy: mem.PinLimited, MaxTotal: int(chunk) + 1}
	st := mustRun(t, c, func(th *Thread) {
		var as []*SharedArray
		for i := 0; i < arrays; i++ {
			a := th.AllAlloc(fmt.Sprintf("A%d", i), elems, 8, elems/threads)
			// Element 17 is remote for thread 0 (block 2 → node 1).
			if a.Owner(17) == th.ID() {
				th.PutUint64(a.At(17), uint64(500+i))
			}
			as = append(as, a)
		}
		th.Barrier()
		if th.ID() == 0 {
			// Round 1 populates the cache per array; allocating and
			// touching the later arrays evicts the earlier pins, so
			// round 2's RDMA fast path hits deregistered regions.
			for round := 0; round < 2; round++ {
				for i, a := range as {
					if got := th.GetUint64(a.At(17)); got != uint64(500+i) {
						t.Errorf("round %d: A%d[17] = %d", round, i, got)
					}
				}
			}
		}
		th.Barrier()
	})
	if st.RDMANacks == 0 {
		t.Fatal("no GET was NACKed; the fallback path went unexercised")
	}
	if st.Cache.Invalidations == 0 {
		t.Fatal("NACKs occurred but no stale cache entry was invalidated")
	}
	if st.PinEvictions == 0 {
		t.Fatal("registration budget never forced an eviction")
	}
}

// A per-object registration limit (the 32 MB LAPI handle cap) makes an
// oversized array permanently uncacheable: every access falls back to
// the AM path, correctly, and the cache never stores an entry for it.
func TestPerObjectLimitFallsBackForever(t *testing.T) {
	const threads, nodes, elems = 4, 2, 64
	c := cfg(threads, nodes, transport.LAPI(), DefaultCache())
	c.Pin = &PinConfig{Policy: mem.PinAll, MaxPerObject: 64} // absurdly small
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		a := th.AllAlloc("big", elems, 8, elems/threads)
		// Element 40 is in block 2 (thread 2, node 1): remote for
		// threads on node 0.
		if a.Owner(40) == th.ID() {
			th.PutUint64(a.At(40), 4242)
		}
		th.Barrier()
		for i := 0; i < 3; i++ {
			if got := th.GetUint64(a.At(40)); got != 4242 {
				t.Errorf("big[40] = %d", got)
			}
		}
		th.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ns := range rt.nodes {
		if ns.cache.Len() != 0 {
			t.Fatalf("node %d cached an unpinnable object", ns.id)
		}
		if ns.tn.Pins.Live() != 0 {
			t.Fatalf("node %d pinned an over-limit object", ns.id)
		}
	}
}

// The ablation claim ([10]): limited pinning performs like
// pin-everything while the working set fits.
func TestPinPoliciesEquivalentWhenFitting(t *testing.T) {
	run := func(policy mem.PinPolicy) int64 {
		c := cfg(8, 4, transport.GM(), DefaultCache())
		c.Pin = &PinConfig{Policy: policy} // profile limits: plenty
		st := mustRun(t, c, func(th *Thread) {
			a := th.AllAlloc("A", 256, 8, 32)
			th.Barrier()
			for i := 0; i < 50; i++ {
				th.GetUint64(a.At(int64(th.Rand().Intn(256))))
			}
			th.Barrier()
		})
		return int64(st.Elapsed)
	}
	all, lim := run(mem.PinAll), run(mem.PinLimited)
	if all != lim {
		t.Fatalf("policies diverge with ample budget: pin-all %d vs limited %d", all, lim)
	}
}
