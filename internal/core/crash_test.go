package core

import (
	"errors"
	"testing"

	"xlupc/internal/fault"
	"xlupc/internal/sim"
	"xlupc/internal/transport"
)

// crashCfg is cfg plus a crash schedule aggressive enough to fire
// several times inside the short test workloads (reliable delivery
// implied by Crash).
func crashCfg(prof *transport.Profile) Config {
	c := cfg(8, 4, prof, DefaultCache())
	c.Crash = &CrashConfig{CrashConfig: fault.CrashConfig{
		Prob: 0.6, Every: 100 * sim.Us,
		RestartMin: 30 * sim.Us, RestartMax: 80 * sim.Us,
		Horizon: 50 * sim.Ms, MaxPerNode: 2,
	}}
	return c
}

// crashWorkload writes a known pattern, then hammers it with randomly
// targeted reads from every thread. The returned checksum is a pure
// function of program semantics: it must not depend on whether (or
// when) nodes crash.
func crashWorkload(t *testing.T, c Config) (uint64, RunStats) {
	t.Helper()
	var sum uint64
	st := mustRun(t, c, func(th *Thread) {
		a := th.AllAlloc("A", 256, 8, 32)
		for j := int64(0); j < 256; j++ {
			if a.Owner(j) == th.ID() {
				th.PutUint64(a.At(j), uint64(j)*7+3)
			}
		}
		th.Barrier()
		var local uint64
		for i := 0; i < 200; i++ {
			j := int64(th.Rand().Intn(256))
			local += th.GetUint64(a.At(j)) ^ uint64(i)
		}
		th.Barrier()
		// Cross-thread rewrites across possible crash windows: the
		// idempotent value must land exactly once despite parked
		// retransmits and stale-NACK PUT retries.
		j := int64((th.ID()*37 + 11) % 256)
		th.PutUint64(a.At(j), uint64(j)*7+3)
		th.Barrier()
		if th.ID() == 0 {
			for j := int64(0); j < 256; j++ {
				if got := th.GetUint64(a.At(j)); got != uint64(j)*7+3 {
					t.Errorf("A[%d] = %d after crashes", j, got)
				}
			}
		}
		th.Barrier()
		sum += local
	})
	return sum, st
}

// Crashes must be invisible to program semantics: the checksum of a
// crash-riddled run equals the fault-free run's, on both transports,
// and the recovery machinery demonstrably fired.
func TestCrashRunHealsWithIdenticalResults(t *testing.T) {
	for _, prof := range []*transport.Profile{transport.GM(), transport.LAPI()} {
		t.Run(prof.Name, func(t *testing.T) {
			clean, cst := crashWorkload(t, cfg(8, 4, prof, DefaultCache()))
			if cst.Crashes != 0 {
				t.Fatalf("fault-free run recorded %d crashes", cst.Crashes)
			}
			sum, st := crashWorkload(t, crashCfg(prof))
			if sum != clean {
				t.Fatalf("crash run checksum %d, fault-free %d", sum, clean)
			}
			if st.Crashes == 0 {
				t.Fatal("crash schedule never fired; parameters too timid")
			}
			if st.CrashDrops == 0 {
				t.Fatal("no arrivals dropped at a down NIC")
			}
			if st.StaleNacks == 0 || st.StaleInvalidated == 0 {
				t.Fatalf("stale-epoch path not exercised: %d nacks, %d invalidated",
					st.StaleNacks, st.StaleInvalidated)
			}
			if st.Recovered == 0 || st.RecoveryTime <= 0 {
				t.Fatalf("no recovery recorded: %d recovered, %v recovery time",
					st.Recovered, st.RecoveryTime)
			}
		})
	}
}

// Two crash runs with the same seed must be identical in every
// virtual-time metric; a different seed must reshuffle the schedule.
func TestCrashDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) (uint64, RunStats) {
		c := crashCfg(transport.GM())
		c.Seed = seed
		return crashWorkload(t, c)
	}
	sa, a := run(3)
	sb, b := run(3)
	if sa != sb || a.Elapsed != b.Elapsed || a.Crashes != b.Crashes ||
		a.StaleNacks != b.StaleNacks || a.StaleInvalidated != b.StaleInvalidated ||
		a.CrashDrops != b.CrashDrops || a.ParkedRetx != b.ParkedRetx ||
		a.Recovered != b.Recovered || a.RecoveryTime != b.RecoveryTime ||
		a.Messages != b.Messages || a.Retransmits != b.Retransmits {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	_, c := run(4)
	if c.Elapsed == a.Elapsed && c.Crashes == a.Crashes && c.StaleNacks == a.StaleNacks {
		t.Fatal("different seed produced an identical crash run")
	}
}

// CrashFail mode must surface the first stale operation as a typed
// *CrashError naming the node, incarnation and operation — a clean
// abort, not a hang or a generic failure.
func TestCrashFailModeReturnsTypedError(t *testing.T) {
	c := crashCfg(transport.GM())
	c.Crash.Mode = CrashFail
	rt, err := NewRuntime(c)
	if err != nil {
		t.Fatal(err)
	}
	_, err = rt.Run(func(th *Thread) {
		a := th.AllAlloc("A", 256, 8, 32)
		for j := int64(0); j < 256; j++ {
			if a.Owner(j) == th.ID() {
				th.PutUint64(a.At(j), uint64(j))
			}
		}
		th.Barrier()
		for i := 0; i < 200; i++ {
			th.GetUint64(a.At(int64(th.Rand().Intn(256))))
		}
		th.Barrier()
	})
	var ce *CrashError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CrashError, got %v", err)
	}
	if ce.Node < 0 || ce.Node >= c.Nodes || ce.Epoch == 0 {
		t.Fatalf("implausible crash error: %+v", ce)
	}
	if ce.Op != "get" && ce.Op != "put" {
		t.Fatalf("crash error op %q", ce.Op)
	}
}

// An inactive crash configuration must be free: with the schedule
// present but Prob 0, the run is indistinguishable (to virtual time and
// traffic) from the same run with Crash nil.
func TestInactiveCrashConfigIsFree(t *testing.T) {
	rc := transport.DefaultRelConfig()
	base := cfg(8, 4, transport.GM(), DefaultCache())
	base.Rel = &rc
	cleanSum, cleanSt := crashWorkload(t, base)

	off := base
	off.Crash = &CrashConfig{} // present but Prob 0: never active
	sum, st := crashWorkload(t, off)
	if sum != cleanSum {
		t.Fatalf("checksum changed: %d vs %d", sum, cleanSum)
	}
	if st.Elapsed != cleanSt.Elapsed || st.Messages != cleanSt.Messages ||
		st.NetBytes != cleanSt.NetBytes || st.RDMAOps != cleanSt.RDMAOps {
		t.Fatalf("inactive crash config perturbed the run:\n%+v\n%+v", st, cleanSt)
	}
	if st.Crashes != 0 || st.StaleNacks != 0 || st.ParkedRetx != 0 {
		t.Fatalf("inactive crash config did crash work: %+v", st)
	}
}
