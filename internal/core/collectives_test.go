package core

import (
	"bytes"
	"fmt"
	"testing"

	"xlupc/internal/transport"
)

func TestAllReduceSum(t *testing.T) {
	for _, shape := range []struct{ threads, nodes int }{
		{4, 1}, {4, 2}, {8, 4}, {12, 3}, {16, 8},
	} {
		shape := shape
		t.Run(fmt.Sprintf("%d-%d", shape.threads, shape.nodes), func(t *testing.T) {
			want := uint64(0)
			for i := 0; i < shape.threads; i++ {
				want += uint64(i + 1)
			}
			mustRun(t, cfg(shape.threads, shape.nodes, transport.GM(), DefaultCache()), func(th *Thread) {
				got := th.AllReduceU64(uint64(th.ID()+1), ReduceSum)
				if got != want {
					t.Errorf("thread %d: sum = %d, want %d", th.ID(), got, want)
				}
			})
		})
	}
}

func TestAllReduceOps(t *testing.T) {
	const threads, nodes = 8, 4
	mustRun(t, cfg(threads, nodes, transport.LAPI(), NoCache()), func(th *Thread) {
		v := uint64(th.ID()*10 + 5)
		if got := th.AllReduceU64(v, ReduceMin); got != 5 {
			t.Errorf("min = %d", got)
		}
		if got := th.AllReduceU64(v, ReduceMax); got != 75 {
			t.Errorf("max = %d", got)
		}
		want := uint64(0)
		for i := 0; i < threads; i++ {
			want ^= uint64(i*10 + 5)
		}
		if got := th.AllReduceU64(v, ReduceXor); got != want {
			t.Errorf("xor = %d, want %d", got, want)
		}
	})
}

func TestAllReduceBackToBack(t *testing.T) {
	// Successive collectives must not bleed state into each other
	// (the representative may race ahead of released waiters).
	mustRun(t, cfg(8, 4, transport.GM(), NoCache()), func(th *Thread) {
		for round := 0; round < 5; round++ {
			v := uint64(th.ID() + round)
			want := uint64(0)
			for i := 0; i < 8; i++ {
				want += uint64(i + round)
			}
			if got := th.AllReduceU64(v, ReduceSum); got != want {
				t.Errorf("round %d thread %d: %d != %d", round, th.ID(), got, want)
			}
		}
	})
}

func TestBroadcast(t *testing.T) {
	for _, root := range []int{0, 3, 7} {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			payload := []byte(fmt.Sprintf("hello from %d", root))
			mustRun(t, cfg(8, 4, transport.GM(), DefaultCache()), func(th *Thread) {
				var in []byte
				if th.ID() == root {
					in = payload
				}
				out := th.Broadcast(root, in)
				if !bytes.Equal(out, payload) {
					t.Errorf("thread %d got %q", th.ID(), out)
				}
			})
		})
	}
}

func TestBroadcastThenReduce(t *testing.T) {
	// Mixed collective sequences share the buffering machinery; make
	// sure epochs do not collide.
	mustRun(t, cfg(8, 2, transport.LAPI(), DefaultCache()), func(th *Thread) {
		seedBytes := th.Broadcast(2, func() []byte {
			if th.ID() == 2 {
				return []byte{42}
			}
			return nil
		}())
		sum := th.AllReduceU64(uint64(seedBytes[0]), ReduceSum)
		if sum != 42*8 {
			t.Errorf("thread %d: sum = %d", th.ID(), sum)
		}
		out := th.Broadcast(5, func() []byte {
			if th.ID() == 5 {
				return []byte{byte(sum % 251)}
			}
			return nil
		}())
		if out[0] != byte(sum%251) {
			t.Errorf("thread %d: second broadcast got %v", th.ID(), out)
		}
	})
}

func TestBroadcastLargePayload(t *testing.T) {
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	mustRun(t, cfg(4, 4, transport.GM(), NoCache()), func(th *Thread) {
		var in []byte
		if th.ID() == 0 {
			in = payload
		}
		out := th.Broadcast(0, in)
		if !bytes.Equal(out, payload) {
			t.Errorf("thread %d large broadcast corrupted", th.ID())
		}
	})
}

func TestBroadcastSingleNode(t *testing.T) {
	mustRun(t, cfg(4, 1, transport.GM(), NoCache()), func(th *Thread) {
		var in []byte
		if th.ID() == 1 {
			in = []byte("smp")
		}
		if got := th.Broadcast(1, in); string(got) != "smp" {
			t.Errorf("thread %d got %q", th.ID(), got)
		}
	})
}

func TestReduceOpString(t *testing.T) {
	if ReduceSum.String() != "sum" || ReduceMin.String() != "min" ||
		ReduceMax.String() != "max" || ReduceXor.String() != "xor" {
		t.Fatal("op names wrong")
	}
	if ReduceOp(9).String() != "op(9)" {
		t.Fatal("unknown op name wrong")
	}
}

func TestCollectiveCostScalesWithNodes(t *testing.T) {
	// A reduction across more nodes takes longer (log factor + wire),
	// sanity-checking that the tree actually spans the machine.
	el := func(nodes int) int64 {
		st := mustRun(t, cfg(nodes, nodes, transport.GM(), NoCache()), func(th *Thread) {
			th.AllReduceU64(1, ReduceSum)
		})
		return int64(st.Elapsed)
	}
	if !(el(16) > el(2)) {
		t.Fatal("16-node reduction not slower than 2-node")
	}
}

func TestScatter(t *testing.T) {
	const threads, nodes, chunk = 8, 4, 4
	for _, root := range []int{0, 5} {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			data := make([]byte, threads*chunk)
			for i := range data {
				data[i] = byte(i)
			}
			mustRun(t, cfg(threads, nodes, transport.GM(), NoCache()), func(th *Thread) {
				var in []byte
				if th.ID() == root {
					in = data
				}
				got := th.Scatter(root, in)
				want := data[th.ID()*chunk : (th.ID()+1)*chunk]
				if !bytes.Equal(got, want) {
					t.Errorf("thread %d got %v, want %v", th.ID(), got, want)
				}
			})
		})
	}
}

func TestGather(t *testing.T) {
	const threads, nodes, chunk = 8, 4, 3
	for _, root := range []int{0, 6} {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			mustRun(t, cfg(threads, nodes, transport.LAPI(), NoCache()), func(th *Thread) {
				mine := make([]byte, chunk)
				for i := range mine {
					mine[i] = byte(th.ID()*10 + i)
				}
				got := th.Gather(root, mine)
				if th.ID() != root {
					if got != nil {
						t.Errorf("thread %d received gather data", th.ID())
					}
					return
				}
				if len(got) != threads*chunk {
					t.Fatalf("root got %d bytes, want %d", len(got), threads*chunk)
				}
				for id := 0; id < threads; id++ {
					for i := 0; i < chunk; i++ {
						if got[id*chunk+i] != byte(id*10+i) {
							t.Errorf("gathered[%d][%d] = %d", id, i, got[id*chunk+i])
						}
					}
				}
			})
		})
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	const threads, nodes = 8, 2
	data := make([]byte, threads*8)
	for i := range data {
		data[i] = byte(i * 3)
	}
	mustRun(t, cfg(threads, nodes, transport.GM(), DefaultCache()), func(th *Thread) {
		var in []byte
		if th.ID() == 2 {
			in = data
		}
		chunk := th.Scatter(2, in)
		// Transform locally, then gather back.
		for i := range chunk {
			chunk[i]++
		}
		out := th.Gather(2, chunk)
		if th.ID() == 2 {
			for i := range out {
				if out[i] != data[i]+1 {
					t.Errorf("roundtrip[%d] = %d, want %d", i, out[i], data[i]+1)
				}
			}
		}
	})
}

func TestScatterIndivisiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	rt, err := NewRuntime(cfg(4, 2, transport.GM(), NoCache()))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = rt.Run(func(th *Thread) {
		var in []byte
		if th.ID() == 0 {
			in = make([]byte, 7) // not divisible by 4 threads
		}
		th.Scatter(0, in)
	})
}
